module Sset = Sepsat_util.Sset

type def = {
  fresh : string;
  symbol : string;
  args : Ast.term list;
  is_predicate : bool;
}

type result = { formula : Ast.formula; p_consts : Sset.t; defs : def list }

let args_equal ctx args1 args2 =
  Ast.and_list ctx (List.map2 (Ast.eq ctx) args1 args2)

(* Shared transformation skeleton: [on_app] and [on_papp] decide what replaces
   an application whose arguments are already transformed. *)
let transform ctx ~on_app ~on_papp root =
  let tmemo = Hashtbl.create 256 in
  let fmemo = Hashtbl.create 256 in
  let rec go_t (t : Ast.term) =
    match Hashtbl.find_opt tmemo t.tid with
    | Some t' -> t'
    | None ->
      let t' =
        match t.tnode with
        | Ast.Const _ -> t
        | Ast.Succ u -> Ast.succ ctx (go_t u)
        | Ast.Pred u -> Ast.pred ctx (go_t u)
        | Ast.Tite (c, a, b) -> Ast.tite ctx (go_f c) (go_t a) (go_t b)
        | Ast.App (f, args) -> on_app f (List.map go_t args)
      in
      Hashtbl.add tmemo t.tid t';
      t'
  and go_f (f : Ast.formula) =
    match Hashtbl.find_opt fmemo f.fid with
    | Some f' -> f'
    | None ->
      let f' =
        match f.fnode with
        | Ast.Ftrue | Ast.Ffalse | Ast.Bconst _ -> f
        | Ast.Not g -> Ast.not_ ctx (go_f g)
        | Ast.And (a, b) -> Ast.and_ ctx (go_f a) (go_f b)
        | Ast.Or (a, b) -> Ast.or_ ctx (go_f a) (go_f b)
        | Ast.Eq (t1, t2) -> Ast.eq ctx (go_t t1) (go_t t2)
        | Ast.Lt (t1, t2) -> Ast.lt ctx (go_t t1) (go_t t2)
        | Ast.Papp (p, args) -> on_papp p (List.map go_t args)
      in
      Hashtbl.add fmemo f.fid f';
      f'
  in
  go_f root

let eliminate ctx root =
  let classification = Polarity.classify root in
  let p_funcs = classification.Polarity.p_funcs in
  let func_occs : (string, (Ast.term list * Ast.term) list ref) Hashtbl.t =
    Hashtbl.create 32
  in
  let pred_occs : (string, (Ast.term list * Ast.formula) list ref) Hashtbl.t =
    Hashtbl.create 32
  in
  let defs = ref [] in
  let fresh_p = ref Sset.empty in
  let occs tbl name =
    match Hashtbl.find_opt tbl name with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.add tbl name r;
      r
  in
  let on_app f args =
    let prevs = occs func_occs f in
    let v = Ast.const ctx (Ast.fresh_name ctx f) in
    let vname = match v.Ast.tnode with Ast.Const c -> c | _ -> assert false in
    if Sset.mem f p_funcs then fresh_p := Sset.add vname !fresh_p;
    defs := { fresh = vname; symbol = f; args; is_predicate = false } :: !defs;
    (* ITE chain matching previous occurrences in order; functional
       consistency is enforced by construction. *)
    let rec chain = function
      | [] -> v
      | (args_j, v_j) :: rest ->
        Ast.tite ctx (args_equal ctx args args_j) v_j (chain rest)
    in
    let replacement = chain (List.rev !prevs) in
    prevs := (args, v) :: !prevs;
    replacement
  in
  let on_papp p args =
    let prevs = occs pred_occs p in
    let b = Ast.bconst ctx (Ast.fresh_name ctx p) in
    let bname = match b.Ast.fnode with Ast.Bconst c -> c | _ -> assert false in
    defs := { fresh = bname; symbol = p; args; is_predicate = true } :: !defs;
    let rec chain = function
      | [] -> b
      | (args_j, b_j) :: rest ->
        Ast.fite ctx (args_equal ctx args args_j) b_j (chain rest)
    in
    let replacement = chain (List.rev !prevs) in
    prevs := (args, b) :: !prevs;
    replacement
  in
  let formula = transform ctx ~on_app ~on_papp root in
  let p_orig =
    Ast.functions root
    |> List.filter (fun (name, arity) -> arity = 0 && Sset.mem name p_funcs)
    |> List.map fst |> Sset.of_list
  in
  { formula; p_consts = Sset.union p_orig !fresh_p; defs = List.rev !defs }

let ackermannize ctx root =
  let func_occs : (string, (Ast.term list * Ast.term) list ref) Hashtbl.t =
    Hashtbl.create 32
  in
  let pred_occs : (string, (Ast.term list * Ast.formula) list ref) Hashtbl.t =
    Hashtbl.create 32
  in
  let defs = ref [] in
  let occs tbl name =
    match Hashtbl.find_opt tbl name with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.add tbl name r;
      r
  in
  let on_app f args =
    let prevs = occs func_occs f in
    let v = Ast.const ctx (Ast.fresh_name ctx f) in
    let vname = match v.Ast.tnode with Ast.Const c -> c | _ -> assert false in
    defs := { fresh = vname; symbol = f; args; is_predicate = false } :: !defs;
    prevs := (args, v) :: !prevs;
    v
  in
  let on_papp p args =
    let prevs = occs pred_occs p in
    let b = Ast.bconst ctx (Ast.fresh_name ctx p) in
    let bname = match b.Ast.fnode with Ast.Bconst c -> c | _ -> assert false in
    defs := { fresh = bname; symbol = p; args; is_predicate = true } :: !defs;
    prevs := (args, b) :: !prevs;
    b
  in
  let body = transform ctx ~on_app ~on_papp root in
  (* Functional-consistency antecedents over all same-symbol pairs. *)
  let fc = ref [] in
  let rec pairs f = function
    | [] -> ()
    | x :: rest ->
      List.iter (f x) rest;
      pairs f rest
  in
  Hashtbl.iter
    (fun _ prevs ->
      pairs
        (fun (a1, v1) (a2, v2) ->
          fc := Ast.implies ctx (args_equal ctx a1 a2) (Ast.eq ctx v1 v2) :: !fc)
        !prevs)
    func_occs;
  Hashtbl.iter
    (fun _ prevs ->
      pairs
        (fun (a1, b1) (a2, b2) ->
          fc := Ast.implies ctx (args_equal ctx a1 a2) (Ast.iff ctx b1 b2) :: !fc)
        !prevs)
    pred_occs;
  let formula = Ast.implies ctx (Ast.and_list ctx !fc) body in
  { formula; p_consts = Sset.empty; defs = List.rev !defs }
