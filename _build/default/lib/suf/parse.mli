(** Concrete s-expression syntax for SUF formulas.

    Grammar (heads are case-sensitive):

    {v
    F ::= true | false | <name>              ; symbolic Boolean constant
        | (not F) | (and F F+) | (or F F+)
        | (=> F F) | (iff F F) | (ite F F F)
        | (= T T) | (< T T) | (<= T T) | (> T T) | (>= T T)
        | (<name> T+)                        ; uninterpreted predicate
    T ::= <name>                             ; symbolic constant
        | (succ T) | (pred T)
        | (+ T <int>) | (- T <int>)          ; sugar for succ/pred chains
        | (ite F T T)
        | (<name> T+)                        ; uninterpreted function
    v}

    Comments run from [;] to end of line. The printer {!Ast.pp} emits this
    syntax, and parse/print round-trips are stable. *)

exception Error of string

val formula : Ast.ctx -> string -> Ast.formula
(** @raise Error on lexical, syntactic or arity problems. *)

val formula_of_file : Ast.ctx -> string -> Ast.formula
(** Reads and parses a whole file. @raise Error / [Sys_error]. *)
