(** Evaluation of SUF expressions under a first-order interpretation.

    An interpretation fixes a total meaning for every uninterpreted function
    and predicate symbol over the integers; [succ]/[pred] are the standard
    +1/-1. Evaluation is the reference semantics the test suite checks every
    transformation against. *)

type t = {
  func : string -> int list -> int;
      (** includes symbolic constants as 0-ary functions *)
  pred : string -> int list -> bool;
      (** includes symbolic Boolean constants as 0-ary predicates *)
}

val eval_term : t -> Ast.term -> int

val eval : t -> Ast.formula -> bool

val random : seed:int -> range:int -> t
(** A deterministic pseudo-random interpretation: every application result is
    a hash of (symbol, arguments, seed) folded into [0, range). Distinct
    seeds give (almost surely) distinct interpretations, which is how the
    tests approximate quantification over all interpretations. *)

val override_const : t -> string -> int -> t
(** Interpretation equal to the first one except on one symbolic constant. *)
