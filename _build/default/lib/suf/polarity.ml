module Sset = Sepsat_util.Sset

type classification = { p_funcs : Sset.t; g_funcs : Sset.t }

(* Formula polarities: 1 = positive, -1 = negative, 0 = both. *)

type term_context = Pos_eq | General

let classify root =
  let all = Hashtbl.create 64 in
  let general = Hashtbl.create 64 in
  let fmemo = Hashtbl.create 256 in
  (* (fid, polarity) pairs already expanded *)
  let tmemo = Hashtbl.create 256 in
  (* (tid, context) pairs already expanded *)
  let record name cx =
    Hashtbl.replace all name ();
    match cx with General -> Hashtbl.replace general name () | Pos_eq -> ()
  in
  let rec go_f (f : Ast.formula) pol =
    if not (Hashtbl.mem fmemo (f.fid, pol)) then begin
      Hashtbl.add fmemo (f.fid, pol) ();
      match f.fnode with
      | Ast.Ftrue | Ast.Ffalse | Ast.Bconst _ -> ()
      | Ast.Not g -> go_f g (-pol)
      | Ast.And (a, b) | Ast.Or (a, b) ->
        go_f a pol;
        go_f b pol
      | Ast.Eq (t1, t2) ->
        let cx = if pol = 1 then Pos_eq else General in
        go_t t1 cx;
        go_t t2 cx
      | Ast.Lt (t1, t2) ->
        go_t t1 General;
        go_t t2 General
      | Ast.Papp (_, args) -> List.iter (fun a -> go_t a General) args
    end
  and go_t (t : Ast.term) cx =
    if not (Hashtbl.mem tmemo (t.tid, cx)) then begin
      Hashtbl.add tmemo (t.tid, cx) ();
      match t.tnode with
      | Ast.Const c -> record c cx
      | Ast.Succ t' | Ast.Pred t' -> go_t t' cx
      | Ast.Tite (g, a, b) ->
        (* Guard equalities acquire both polarities through the ITE. *)
        go_f g 0;
        go_t a cx;
        go_t b cx
      | Ast.App (f, args) ->
        record f cx;
        (* Function elimination compares argument lists inside ITE guards,
           which have mixed polarity, so arguments are general. *)
        List.iter (fun a -> go_t a General) args
    end
  in
  go_f root 1;
  let p = ref Sset.empty and g = ref Sset.empty in
  Hashtbl.iter
    (fun name () ->
      if Hashtbl.mem general name then g := Sset.add name !g
      else p := Sset.add name !p)
    all;
  { p_funcs = !p; g_funcs = !g }
