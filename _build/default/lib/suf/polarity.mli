(** Positive-equality analysis (paper §2.1.1).

    Determines, for a formula whose *validity* is being decided, which
    function symbols are **p-function symbols**: every application of such a
    symbol flows only into equalities of positive polarity. By the
    Bryant-German-Velev positive-equality theorem, p-applications may be
    interpreted maximally diversely (pairwise distinct and distinct from
    everything else), which lets the encoders give them fixed values instead
    of variables.

    The analysis is conservative: any occurrence in an inequality, in a
    negative- or mixed-polarity equality, inside an ITE guard, or as an
    argument of another uninterpreted application makes the symbol a
    g-function symbol (argument positions become mixed-polarity guard
    equalities after function elimination). *)

type classification = {
  p_funcs : Sepsat_util.Sset.t;
      (** function symbols (incl. 0-ary constants) usable diversely *)
  g_funcs : Sepsat_util.Sset.t;  (** everything else *)
}

val classify : Ast.formula -> classification
(** Classifies all function symbols of the formula, read as a validity
    query. *)
