type t = {
  func : string -> int list -> int;
  pred : string -> int list -> bool;
}

(* One memoized evaluator pair per call; terms and formulas are mutually
   recursive through ITE guards. *)
let evaluators interp =
  let tmemo = Hashtbl.create 64 in
  let fmemo = Hashtbl.create 64 in
  let rec go_t (t : Ast.term) =
    match Hashtbl.find_opt tmemo t.tid with
    | Some v -> v
    | None ->
      let v =
        match t.tnode with
        | Ast.Const c -> interp.func c []
        | Ast.Succ t' -> go_t t' + 1
        | Ast.Pred t' -> go_t t' - 1
        | Ast.Tite (c, a, b) -> if go_f c then go_t a else go_t b
        | Ast.App (f, args) -> interp.func f (List.map go_t args)
      in
      Hashtbl.add tmemo t.tid v;
      v
  and go_f (f : Ast.formula) =
    match Hashtbl.find_opt fmemo f.fid with
    | Some b -> b
    | None ->
      let b =
        match f.fnode with
        | Ast.Ftrue -> true
        | Ast.Ffalse -> false
        | Ast.Not g -> not (go_f g)
        | Ast.And (a, b) -> go_f a && go_f b
        | Ast.Or (a, b) -> go_f a || go_f b
        | Ast.Eq (t1, t2) -> go_t t1 = go_t t2
        | Ast.Lt (t1, t2) -> go_t t1 < go_t t2
        | Ast.Papp (p, args) -> interp.pred p (List.map go_t args)
        | Ast.Bconst b -> interp.pred b []
      in
      Hashtbl.add fmemo f.fid b;
      b
  in
  (go_t, go_f)

let eval_term interp t = fst (evaluators interp) t

let eval interp f = snd (evaluators interp) f

let random ~seed ~range =
  let range = max 1 range in
  let hash parts = Hashtbl.hash (seed, parts) in
  {
    func = (fun name args -> hash (`F, name, args) mod range);
    pred = (fun name args -> hash (`P, name, args) land 1 = 0);
  }

let override_const interp name v =
  {
    interp with
    func =
      (fun name' args ->
        if String.equal name name' && args = [] then v else interp.func name' args);
  }
