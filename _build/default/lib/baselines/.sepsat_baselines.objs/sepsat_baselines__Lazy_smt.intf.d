lib/baselines/lazy_smt.mli: Sepsat_sep Sepsat_suf Sepsat_util
