lib/baselines/svc.mli: Sepsat_sep Sepsat_suf Sepsat_util
