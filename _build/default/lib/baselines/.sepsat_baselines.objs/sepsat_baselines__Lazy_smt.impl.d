lib/baselines/lazy_smt.ml: Hashtbl List Sepsat_encode Sepsat_prop Sepsat_sat Sepsat_sep Sepsat_suf Sepsat_theory Sepsat_util
