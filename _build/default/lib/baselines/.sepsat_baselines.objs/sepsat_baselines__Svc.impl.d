lib/baselines/svc.ml: Hashtbl List Sepsat_sep Sepsat_suf Sepsat_theory Sepsat_util
