module Ast = Sepsat_suf.Ast
module Sep = Sepsat_sep
module Normal = Sep.Normal
module Ground = Sep.Ground
module Bound = Sep.Bound
module Brute = Sep.Brute
module Verdict = Sep.Verdict
module Diff_solver = Sepsat_theory.Diff_solver
module Deadline = Sepsat_util.Deadline

type stats = { splits : int; theory_checks : int }

let no_p _ = false

(* Replace every atom by its ground-pair expansion, folding the statically
   decidable comparisons; the result's atoms all compare ground terms with
   distinct bases. *)
let expand_atoms ctx root =
  let memo = Hashtbl.create 256 in
  let gmap = Sep.Ground_map.create ctx in
  let rec go_f (f : Ast.formula) =
    match Hashtbl.find_opt memo f.fid with
    | Some f' -> f'
    | None ->
      let f' =
        match f.fnode with
        | Ast.Ftrue | Ast.Ffalse | Ast.Bconst _ -> f
        | Ast.Not g -> Ast.not_ ctx (go_f g)
        | Ast.And (a, b) -> Ast.and_ ctx (go_f a) (go_f b)
        | Ast.Or (a, b) -> Ast.or_ ctx (go_f a) (go_f b)
        | Ast.Eq (t1, t2) -> expand t1 t2 `Eq
        | Ast.Lt (t1, t2) -> expand t1 t2 `Lt
        | Ast.Papp _ -> invalid_arg "Svc: application present"
      in
      Hashtbl.add memo f.fid f';
      f'
  and expand t1 t2 op =
    let pairs1 = Sep.Ground_map.of_term gmap t1 in
    let pairs2 = Sep.Ground_map.of_term gmap t2 in
    let disjuncts =
      List.concat_map
        (fun (g1, c1) ->
          List.map
            (fun (g2, c2) ->
              let ground_atom =
                match op with
                | `Eq -> (
                  match Bound.eq_grounds ~is_p:no_p g1 g2 with
                  | `Static b -> Ast.of_bool ctx b
                  | `Conj _ ->
                    Ast.eq ctx (Ground.to_term ctx g1) (Ground.to_term ctx g2))
                | `Lt -> (
                  match Bound.lt_grounds ~is_p:no_p g1 g2 with
                  | `Static b -> Ast.of_bool ctx b
                  | `Bound _ ->
                    Ast.lt ctx (Ground.to_term ctx g1) (Ground.to_term ctx g2))
              in
              Ast.and_ ctx (Ast.and_ ctx (go_f c1) (go_f c2)) ground_atom)
            pairs2)
        pairs1
    in
    Ast.or_list ctx disjuncts
  in
  go_f root

let decide ?(deadline = Deadline.none) ctx formula =
  let formula = Normal.normalize ctx formula in
  let expanded = expand_atoms ctx formula in
  let ds : unit Diff_solver.t = Diff_solver.create () in
  List.iter
    (fun (name, arity) ->
      assert (arity = 0);
      ignore (Diff_solver.node ds name))
    (Ast.functions formula);
  let splits = ref 0 in
  let theory_checks = ref 0 in
  (* Boolean-constant environment with trailing. *)
  let benv : (string, bool) Hashtbl.t = Hashtbl.create 16 in
  let assert_view (v : Bound.view) =
    let b = v.Bound.bound in
    let x = Diff_solver.node ds b.Bound.x in
    let y = Diff_solver.node ds b.Bound.y in
    incr theory_checks;
    if v.Bound.negated then
      Diff_solver.assert_and_check ds ~x:y ~y:x ~c:(-b.Bound.c - 1) ~tag:()
    else Diff_solver.assert_and_check ds ~x ~y ~c:b.Bound.c ~tag:()
  in
  (* Asserts a list of bound views; runs [k] if the context stays
     consistent. Restores the context afterwards; returns [k]'s success. *)
  let with_views views k =
    Diff_solver.push ds;
    let ok = List.for_all assert_view views && k () in
    if not ok then Diff_solver.pop ds;
    ok
  in
  let with_bconst name value k =
    match Hashtbl.find_opt benv name with
    | Some b -> b = value && k ()
    | None ->
      Hashtbl.add benv name value;
      let ok = k () in
      if not ok then Hashtbl.remove benv name;
      ok
  in
  (* Decided atomic formulas, so a shared atom splits once per branch. *)
  let decided : (int, bool) Hashtbl.t = Hashtbl.create 64 in
  let atom_views (f : Ast.formula) value =
    match f.fnode with
    | Ast.Eq (t1, t2) -> (
      let g1 = Normal.ground_of_term t1 and g2 = Normal.ground_of_term t2 in
      match Bound.eq_grounds ~is_p:no_p g1 g2 with
      | `Static _ -> assert false (* folded during expansion *)
      | `Conj (v1, v2) ->
        if value then [ [ v1; v2 ] ]
        else [ [ Bound.negate v1 ]; [ Bound.negate v2 ] ])
    | Ast.Lt (t1, t2) -> (
      let g1 = Normal.ground_of_term t1 and g2 = Normal.ground_of_term t2 in
      match Bound.lt_grounds ~is_p:no_p g1 g2 with
      | `Static _ -> assert false
      | `Bound v -> if value then [ [ v ] ] else [ [ Bound.negate v ] ])
    | _ -> assert false
  in
  let with_atom f value k =
    match Hashtbl.find_opt decided (f : Ast.formula).fid with
    | Some b -> b = value && k ()
    | None ->
      Hashtbl.add decided f.fid value;
      incr splits;
      let ok = List.exists (fun views -> with_views views k) (atom_views f value) in
      if not ok then Hashtbl.remove decided f.fid;
      ok
  in
  (* Branch-order heuristic: put small subproblems first, so cheap
     contradictions surface before expensive subtrees are (re)explored. *)
  let sizes : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let rec fsize (f : Ast.formula) =
    match Hashtbl.find_opt sizes f.fid with
    | Some s -> s
    | None ->
      let s =
        match f.fnode with
        | Ast.Ftrue | Ast.Ffalse | Ast.Bconst _ | Ast.Eq _ | Ast.Lt _ -> 1
        | Ast.Not g -> 1 + fsize g
        | Ast.And (a, b) | Ast.Or (a, b) -> 1 + fsize a + fsize b
        | Ast.Papp _ -> invalid_arg "Svc: application present"
      in
      Hashtbl.add sizes f.fid s;
      s
  in
  let ordered a b = if fsize a <= fsize b then (a, b) else (b, a) in
  (* Tableau search: [satisfy f k] extends the context to make [f] true and
     then runs the continuation [k]; [falsify f k] dually. No learning — the
     SVC signature behaviour the paper compares against. *)
  let rec satisfy (f : Ast.formula) k =
    Deadline.check deadline;
    match f.fnode with
    | Ast.Ftrue -> k ()
    | Ast.Ffalse -> false
    | Ast.Not g -> falsify g k
    | Ast.And (a, b) ->
      let a, b = ordered a b in
      satisfy a (fun () -> satisfy b k)
    | Ast.Or (a, b) ->
      incr splits;
      let a, b = ordered a b in
      satisfy a k || satisfy b k
    | Ast.Bconst name -> with_bconst name true k
    | Ast.Eq _ | Ast.Lt _ -> with_atom f true k
    | Ast.Papp _ -> invalid_arg "Svc: application present"
  and falsify (f : Ast.formula) k =
    Deadline.check deadline;
    match f.fnode with
    | Ast.Ftrue -> false
    | Ast.Ffalse -> k ()
    | Ast.Not g -> satisfy g k
    | Ast.And (a, b) ->
      incr splits;
      let a, b = ordered a b in
      falsify a k || falsify b k
    | Ast.Or (a, b) ->
      let a, b = ordered a b in
      falsify a (fun () -> falsify b k)
    | Ast.Bconst name -> with_bconst name false k
    | Ast.Eq _ | Ast.Lt _ -> with_atom f false k
    | Ast.Papp _ -> invalid_arg "Svc: application present"
  in
  let result =
    match falsify expanded (fun () -> true) with
    | true ->
      let ints = Diff_solver.model ds in
      let bools =
        Ast.predicates expanded
        |> List.map (fun (name, _) ->
               (name, try Hashtbl.find benv name with Not_found -> false))
      in
      Verdict.Invalid { Brute.ints; bools }
    | false -> Verdict.Valid
    | exception Deadline.Timeout -> Verdict.Unknown "timeout"
  in
  (result, { splits = !splits; theory_checks = !theory_checks })
