(** SVC-style validity checker (baseline of paper §5).

    The Stanford Validity Checker decides formulas by recursive case
    splitting on atomic formulas with a theory context checked by graph
    algorithms, and has no conflict learning. This stand-in reproduces both
    signature behaviours the paper reports: conjunctions of separation
    predicates reduce to a single shortest-path (negative-cycle) problem and
    are fast, while formulas with many disjunctions blow up exponentially.

    Operates on application-free formulas (run {!Sepsat_suf.Elim} first);
    positive equality is not exploited, as in SVC. *)

module Ast = Sepsat_suf.Ast

type stats = { splits : int; theory_checks : int }

val decide :
  ?deadline:Sepsat_util.Deadline.t ->
  Ast.ctx ->
  Ast.formula ->
  Sepsat_sep.Verdict.t * stats
(** Validity of an application-free formula. *)
