(** Imperative union-find over dense integer keys.

    Used to build the equivalence classes of symbolic constants in the hybrid
    encoding (paper §4 step 1). Path compression plus union by rank. *)

type t

val create : int -> t
(** [create n] has elements [0 .. n-1], each in its own class. *)

val find : t -> int -> int
(** Canonical representative. *)

val union : t -> int -> int -> unit

val same : t -> int -> int -> bool

val classes : t -> int list list
(** All equivalence classes, each as a sorted list of members; classes appear
    in order of their smallest member. *)
