(** Sets of symbol names. *)

include Set.Make (String)
