(** Cooperative CPU-time budgets.

    Long-running phases (SAT search, transitivity-constraint generation, the
    lazy refinement loop) poll a deadline and abort with {!Timeout} when the
    budget is exhausted, standing in for the paper's 30-minute wall-clock
    timeout at laptop-friendly scales. *)

type t

exception Timeout

val none : t
(** A deadline that never fires. *)

val after : float -> t
(** [after s] fires [s] seconds of processor time from now. *)

val exceeded : t -> bool

val check : t -> unit
(** @raise Timeout if the deadline has passed. *)

val now : unit -> float
(** Processor time in seconds, the clock deadlines are measured against. *)
