type 'a t = { mutable data : 'a array; mutable sz : int; dummy : 'a }

let create ~dummy = { data = Array.make 16 dummy; sz = 0; dummy }

let make n x =
  let n' = max n 1 in
  { data = Array.make n' x; sz = n; dummy = x }

let size v = v.sz

let is_empty v = v.sz = 0

let ensure v n =
  if n > Array.length v.data then begin
    let cap = max n (2 * Array.length v.data) in
    let data = Array.make cap v.dummy in
    Array.blit v.data 0 data 0 v.sz;
    v.data <- data
  end

let push v x =
  ensure v (v.sz + 1);
  v.data.(v.sz) <- x;
  v.sz <- v.sz + 1

let pop v =
  if v.sz = 0 then invalid_arg "Vec.pop: empty";
  v.sz <- v.sz - 1;
  let x = v.data.(v.sz) in
  v.data.(v.sz) <- v.dummy;
  x

let last v =
  if v.sz = 0 then invalid_arg "Vec.last: empty";
  v.data.(v.sz - 1)

let get v i =
  if i < 0 || i >= v.sz then invalid_arg "Vec.get";
  v.data.(i)

let set v i x =
  if i < 0 || i >= v.sz then invalid_arg "Vec.set";
  v.data.(i) <- x

let shrink v n =
  if n < 0 || n > v.sz then invalid_arg "Vec.shrink";
  for i = n to v.sz - 1 do
    v.data.(i) <- v.dummy
  done;
  v.sz <- n

let clear v = shrink v 0

let grow_to v n x =
  ensure v n;
  while v.sz < n do
    v.data.(v.sz) <- x;
    v.sz <- v.sz + 1
  done

let iter f v =
  for i = 0 to v.sz - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.sz - 1 do
    f i v.data.(i)
  done

let exists p v =
  let rec loop i = i < v.sz && (p v.data.(i) || loop (i + 1)) in
  loop 0

let fold f acc v =
  let acc = ref acc in
  for i = 0 to v.sz - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let to_list v =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (v.data.(i) :: acc) in
  loop (v.sz - 1) []

let of_list ~dummy xs =
  let v = create ~dummy in
  List.iter (push v) xs;
  v

let swap v i j =
  let x = get v i in
  set v i (get v j);
  set v j x

let remove_if p v =
  let j = ref 0 in
  for i = 0 to v.sz - 1 do
    if not (p v.data.(i)) then begin
      v.data.(!j) <- v.data.(i);
      incr j
    end
  done;
  shrink v !j

let sort cmp v =
  let a = Array.sub v.data 0 v.sz in
  Array.sort cmp a;
  Array.blit a 0 v.data 0 v.sz
