type t = { until : float option }

exception Timeout

let none = { until = None }

let now () = Sys.time ()

let after s = { until = Some (now () +. s) }

let exceeded t =
  match t.until with
  | None -> false
  | Some u -> now () > u

let check t = if exceeded t then raise Timeout
