type t = { parent : int array; rank : int array }

let create n = { parent = Array.init n (fun i -> i); rank = Array.make n 0 }

let rec find t i =
  let p = t.parent.(i) in
  if p = i then i
  else begin
    let root = find t p in
    t.parent.(i) <- root;
    root
  end

let union t i j =
  let ri = find t i and rj = find t j in
  if ri <> rj then
    if t.rank.(ri) < t.rank.(rj) then t.parent.(ri) <- rj
    else if t.rank.(ri) > t.rank.(rj) then t.parent.(rj) <- ri
    else begin
      t.parent.(rj) <- ri;
      t.rank.(ri) <- t.rank.(ri) + 1
    end

let same t i j = find t i = find t j

let classes t =
  let n = Array.length t.parent in
  let tbl = Hashtbl.create 16 in
  for i = n - 1 downto 0 do
    let r = find t i in
    let members = try Hashtbl.find tbl r with Not_found -> [] in
    Hashtbl.replace tbl r (i :: members)
  done;
  let all = Hashtbl.fold (fun _ members acc -> members :: acc) tbl [] in
  List.sort (fun a b -> compare (List.hd a) (List.hd b)) all
