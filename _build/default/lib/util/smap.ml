(** Maps keyed by symbol names. *)

include Map.Make (String)
