(** Growable arrays.

    A thin imperative vector used by the SAT solver and the encoders, where
    amortized O(1) push and in-place mutation matter. The [dummy] element
    given at creation fills unused slots; it is never observable through the
    public API. *)

type 'a t

val create : dummy:'a -> 'a t
(** Fresh empty vector. *)

val make : int -> 'a -> 'a t
(** [make n x] is a vector of [n] copies of [x] (also used as dummy). *)

val size : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a
(** Removes and returns the last element. @raise Invalid_argument if empty. *)

val last : 'a t -> 'a
(** @raise Invalid_argument if empty. *)

val get : 'a t -> int -> 'a

val set : 'a t -> int -> 'a -> unit

val shrink : 'a t -> int -> unit
(** [shrink v n] keeps only the first [n] elements. *)

val clear : 'a t -> unit

val grow_to : 'a t -> int -> 'a -> unit
(** [grow_to v n x] extends [v] with copies of [x] until its size is at least
    [n]. *)

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val exists : ('a -> bool) -> 'a t -> bool

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val to_list : 'a t -> 'a list

val of_list : dummy:'a -> 'a list -> 'a t

val swap : 'a t -> int -> int -> unit

val remove_if : ('a -> bool) -> 'a t -> unit
(** Removes all elements satisfying the predicate, preserving order of the
    survivors. *)

val sort : ('a -> 'a -> int) -> 'a t -> unit
