lib/util/vec.mli:
