lib/util/deadline.ml: Sys
