lib/util/sset.ml: Set String
