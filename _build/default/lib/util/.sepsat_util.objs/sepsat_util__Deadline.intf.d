lib/util/deadline.mli:
