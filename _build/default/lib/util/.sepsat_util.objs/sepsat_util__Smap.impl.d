lib/util/smap.ml: Map String
