(** Unsigned bit-vector circuits over propositional formulas.

    The small-domain encoding interprets each symbolic constant over a finite
    domain as a "symbolic bit-vector" (paper §2.1.2); arithmetic and
    relational operators are re-synthesized here as Boolean circuits:
    ripple-carry constant addition, unsigned comparators, and per-bit
    multiplexers for ITE. Bit order is LSB-first. *)

module F = Sepsat_prop.Formula

type t = F.t array

val width_for : int -> int
(** Bits needed to represent values [0 .. n] (at least 1). *)

val of_int : F.ctx -> width:int -> int -> t
(** Constant vector. @raise Invalid_argument if negative or too wide. *)

val fresh : F.ctx -> width:int -> t
(** Vector of fresh Boolean variables. *)

val add_int : F.ctx -> t -> int -> t
(** Ripple-carry addition of an integer constant, modulo [2^width]; negative
    constants subtract via two's complement, which is exact whenever the true
    result is non-negative. *)

val equal : F.ctx -> t -> t -> F.t

val ult : F.ctx -> t -> t -> F.t
(** Unsigned strict comparator. *)

val ule : F.ctx -> t -> t -> F.t

val mux : F.ctx -> F.t -> t -> t -> t
(** [mux ctx c a b] selects [a] when [c] holds, else [b]. *)

val decode : (int -> bool) -> t -> int
(** Value under a variable assignment (non-variable bits are evaluated
    structurally). *)
