(** Small-domain (finite instantiation) encoding — the paper's SD method
    (§2.1.2).

    Every g-constant of a class [V_i] becomes a symbolic bit-vector
    range-constrained to the class domain [\[L_i, L_i + range(V_i) − 1\]],
    which is sufficient by the small-model property. Ground terms [v + k] are
    constant adders, ITE is a mux, and [=]/[<] are comparators. p-constants
    receive fixed bit patterns placed above every reachable class value
    (maximally diverse interpretation), as supplied by the caller. *)

module F = Sepsat_prop.Formula
module Ast = Sepsat_suf.Ast
module Classes = Sepsat_sep.Classes

type t

val create : F.ctx -> Classes.t -> p_value:(string -> int) -> t

val encode_atom :
  t ->
  encode_formula:(Ast.formula -> F.t) ->
  cls:Classes.class_info ->
  Ast.formula ->
  F.t
(** Encodes an [Eq]/[Lt] atom owned by class [cls]; ITE guards inside the
    atom's terms are encoded through the [encode_formula] callback (they may
    mention other classes). *)

val domain_constraints : t -> F.t
(** Conjunction of the range constraints of every bit-vector allocated so
    far. Must be conjoined with (the antecedent side of) the final query. *)

val decode_consts : t -> (int -> bool) -> (string * int) list
(** Values of the g-constants that received bit-vectors, under a model. *)

val width_of_class : t -> Classes.class_info -> int
