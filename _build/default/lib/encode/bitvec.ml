module F = Sepsat_prop.Formula

type t = F.t array

let width_for n =
  let n = max n 0 in
  let rec loop bits cap = if cap > n then bits else loop (bits + 1) (2 * cap) in
  loop 1 2

let of_int ctx ~width n =
  if n < 0 then invalid_arg "Bitvec.of_int: negative";
  if width < 63 && n lsr width <> 0 then
    invalid_arg "Bitvec.of_int: value does not fit";
  Array.init width (fun i -> F.of_bool ctx (n lsr i land 1 = 1))

let fresh ctx ~width = Array.init width (fun _ -> F.fresh_var ctx)

let add_int ctx bv k =
  let width = Array.length bv in
  let k =
    (* normalize into [0, 2^width) so subtraction is two's-complement *)
    let m = 1 lsl width in
    ((k mod m) + m) mod m
  in
  if k = 0 then bv
  else begin
    let out = Array.make width (F.fls ctx) in
    let carry = ref (F.fls ctx) in
    for i = 0 to width - 1 do
      let a = bv.(i) and c = !carry in
      if k lsr i land 1 = 1 then begin
        out.(i) <- F.iff ctx a c;
        carry := F.or_ ctx a c
      end
      else begin
        out.(i) <- F.xor ctx a c;
        carry := F.and_ ctx a c
      end
    done;
    out
  end

let check_widths name a b =
  if Array.length a <> Array.length b then
    invalid_arg (Printf.sprintf "Bitvec.%s: width mismatch" name)

let equal ctx a b =
  check_widths "equal" a b;
  let acc = ref (F.tru ctx) in
  for i = 0 to Array.length a - 1 do
    acc := F.and_ ctx !acc (F.iff ctx a.(i) b.(i))
  done;
  !acc

let ult ctx a b =
  check_widths "ult" a b;
  (* From the LSB up: lt_i = (a_i < b_i) or (a_i = b_i and lt_{i-1}). *)
  let lt = ref (F.fls ctx) in
  for i = 0 to Array.length a - 1 do
    lt :=
      F.or_ ctx
        (F.and_ ctx (F.not_ ctx a.(i)) b.(i))
        (F.and_ ctx (F.iff ctx a.(i) b.(i)) !lt)
  done;
  !lt

let ule ctx a b = F.not_ ctx (ult ctx b a)

let mux ctx c a b =
  check_widths "mux" a b;
  Array.init (Array.length a) (fun i -> F.ite ctx c a.(i) b.(i))

let decode assign bv =
  let v = ref 0 in
  for i = Array.length bv - 1 downto 0 do
    v := (2 * !v) + if F.eval assign bv.(i) then 1 else 0
  done;
  !v
