module F = Sepsat_prop.Formula
module Ast = Sepsat_suf.Ast
module Sep = Sepsat_sep
module Classes = Sep.Classes
module Ground = Sep.Ground
module Normal = Sep.Normal

type t = {
  pctx : F.ctx;
  classes : Classes.t;
  p_value : string -> int;
  widths : (int, int) Hashtbl.t;  (* class id -> width *)
  bvs : (string, Bitvec.t) Hashtbl.t;  (* g-constant -> bit-vector *)
  term_memo : (int * int, Bitvec.t) Hashtbl.t;  (* (tid, class id) -> bits *)
  mutable domain : F.t list;
}

let create pctx classes ~p_value =
  {
    pctx;
    classes;
    p_value;
    widths = Hashtbl.create 16;
    bvs = Hashtbl.create 64;
    term_memo = Hashtbl.create 256;
    domain = [];
  }

let width_of_class t (cls : Classes.class_info) =
  match Hashtbl.find_opt t.widths cls.id with
  | Some w -> w
  | None ->
    (* Largest value any ground term of this class can denote: class members
       reach shift + range − 1 + umax; fixed p-constant values reach their
       assigned value plus their largest offset. *)
    let reach = cls.shift + cls.range - 1 + max 0 cls.umax in
    let reach =
      Sepsat_util.Sset.fold
        (fun p acc ->
          let _, u = Classes.offsets t.classes p in
          max acc (t.p_value p + max 0 u))
        cls.p_neighbors reach
    in
    let w = Bitvec.width_for reach in
    Hashtbl.add t.widths cls.id w;
    w

let const_bv t (cls : Classes.class_info) name =
  match Hashtbl.find_opt t.bvs name with
  | Some bv -> bv
  | None ->
    let width = width_of_class t cls in
    let bv = Bitvec.fresh t.pctx ~width in
    let lo = Bitvec.of_int t.pctx ~width cls.shift in
    let hi = Bitvec.of_int t.pctx ~width (cls.shift + cls.range - 1) in
    t.domain <-
      Bitvec.ule t.pctx lo bv :: Bitvec.ule t.pctx bv hi :: t.domain;
    Hashtbl.add t.bvs name bv;
    bv

let rec encode_term t ~encode_formula ~(cls : Classes.class_info)
    (term : Ast.term) =
  match Hashtbl.find_opt t.term_memo (term.tid, cls.id) with
  | Some bv -> bv
  | None ->
    let bv =
      match term.tnode with
      | Ast.Const _ | Ast.Succ _ | Ast.Pred _ ->
        let g = Normal.ground_of_term term in
        if Classes.is_p t.classes g.Ground.base then
          let width = width_of_class t cls in
          Bitvec.of_int t.pctx ~width (t.p_value g.Ground.base + g.offset)
        else
          Bitvec.add_int t.pctx (const_bv t cls g.Ground.base) g.offset
      | Ast.Tite (c, a, b) ->
        Bitvec.mux t.pctx (encode_formula c)
          (encode_term t ~encode_formula ~cls a)
          (encode_term t ~encode_formula ~cls b)
      | Ast.App _ -> invalid_arg "Sd.encode_term: application present"
    in
    Hashtbl.add t.term_memo (term.tid, cls.id) bv;
    bv

let encode_atom t ~encode_formula ~cls (atom : Ast.formula) =
  match atom.fnode with
  | Ast.Eq (t1, t2) ->
    Bitvec.equal t.pctx
      (encode_term t ~encode_formula ~cls t1)
      (encode_term t ~encode_formula ~cls t2)
  | Ast.Lt (t1, t2) ->
    Bitvec.ult t.pctx
      (encode_term t ~encode_formula ~cls t1)
      (encode_term t ~encode_formula ~cls t2)
  | _ -> invalid_arg "Sd.encode_atom: not an atom"

let domain_constraints t = F.and_list t.pctx t.domain

let decode_consts t assign =
  Hashtbl.fold (fun name bv acc -> (name, Bitvec.decode assign bv) :: acc)
    t.bvs []
  |> List.sort compare
