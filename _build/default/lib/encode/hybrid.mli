(** The hybrid encoding (paper §4) and its SD/EIJ degenerations.

    Encodes an application-free SUF formula (the output of
    {!Sepsat_suf.Elim}) into a propositional formula
    [F_bool = F_trans ⟹ F_bvar]:

    + symbolic constants are partitioned into independent equivalence classes;
    + ground terms are normalized;
    + per class, the method is SD when [SepCnt(V_i) > threshold], EIJ
      otherwise — so [threshold = -1] is the pure SD procedure and
      [threshold = max_int] the pure EIJ procedure;
    + p-constants fold to fixed diverse values.

    The result carries a decoder from propositional models back to integer /
    Boolean countermodels of the separation-logic formula. *)

module F = Sepsat_prop.Formula
module Ast = Sepsat_suf.Ast
module Sset = Sepsat_util.Sset
module Brute = Sepsat_sep.Brute

exception Translation_blowup
(** Re-raised from {!Eij}: the transitivity-constraint budget was exhausted
    (the paper's translation-stage timeout). *)

type config = {
  threshold : int;  (** the paper's [SEP_THOLD]; default 700 (§4.1) *)
  eij_budget : int;  (** transitivity-constraint budget *)
}

val default_threshold : int
(** 700, the value the paper's clustering procedure selects. *)

val default : config

val sd_only : config
(** Every class through SD — the paper's standalone SD method. *)

val eij_only : config
(** Every class through EIJ — the paper's standalone EIJ method. *)

val hybrid : ?threshold:int -> unit -> config

type stats = {
  n_classes : int;
  sd_classes : int;
  eij_classes : int;
  total_sep_cnt : int;  (** pre-encoding separation-predicate estimate *)
  eij_predicates : int;  (** predicate variables actually allocated *)
  trans_constraints : int;
  bool_size : int;  (** DAG size of [F_bool] *)
}

type encoded = {
  prop_ctx : F.ctx;
  f_bool : F.t;  (** valid input iff [not f_bool] is unsatisfiable *)
  stats : stats;
  decode : (int -> bool) -> Brute.assignment;
      (** countermodel of the separation-logic formula from a propositional
          model of [not f_bool] *)
}

val encode : ?config:config -> Ast.ctx -> p_consts:Sset.t -> Ast.formula -> encoded
(** @raise Translation_blowup when EIJ translation exceeds its budget.
    @raise Invalid_argument if the formula contains applications. *)
