lib/encode/hybrid.ml: Array Eij Hashtbl List Printf Sd Sepsat_prop Sepsat_sep Sepsat_suf Sepsat_theory Sepsat_util
