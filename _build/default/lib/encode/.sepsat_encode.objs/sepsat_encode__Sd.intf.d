lib/encode/sd.mli: Sepsat_prop Sepsat_sep Sepsat_suf
