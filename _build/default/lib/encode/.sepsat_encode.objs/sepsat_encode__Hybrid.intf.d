lib/encode/hybrid.mli: Sepsat_prop Sepsat_sep Sepsat_suf Sepsat_util
