lib/encode/sd.ml: Bitvec Hashtbl List Sepsat_prop Sepsat_sep Sepsat_suf Sepsat_util
