lib/encode/bitvec.mli: Sepsat_prop
