lib/encode/eij.mli: Sepsat_prop Sepsat_sep
