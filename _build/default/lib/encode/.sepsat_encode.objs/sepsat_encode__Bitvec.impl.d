lib/encode/bitvec.ml: Array Printf Sepsat_prop
