lib/encode/eij.ml: Hashtbl List Map Sepsat_prop Sepsat_sep String
