type cnf = { nvars : int; clauses : Lit.t list list }

let parse text =
  let lines = String.split_on_char '\n' text in
  let nvars = ref 0 in
  let clauses = ref [] in
  let current = ref [] in
  let handle_token tok =
    match int_of_string_opt tok with
    | None -> failwith (Printf.sprintf "Dimacs.parse: bad token %S" tok)
    | Some 0 ->
      clauses := List.rev !current :: !clauses;
      current := []
    | Some i ->
      let l = Lit.of_dimacs i in
      if Lit.var l + 1 > !nvars then nvars := Lit.var l + 1;
      current := l :: !current
  in
  let handle_line line =
    let line = String.trim line in
    if String.length line = 0 then ()
    else if line.[0] = 'c' then ()
    else if line.[0] = 'p' then begin
      match String.split_on_char ' ' line |> List.filter (( <> ) "") with
      | [ "p"; "cnf"; nv; _nc ] -> (
        match int_of_string_opt nv with
        | Some n -> nvars := max !nvars n
        | None -> failwith "Dimacs.parse: bad header")
      | _ -> failwith "Dimacs.parse: bad header"
    end
    else
      String.split_on_char ' ' line
      |> List.filter (( <> ) "")
      |> List.iter handle_token
  in
  List.iter handle_line lines;
  if !current <> [] then failwith "Dimacs.parse: unterminated clause";
  { nvars = !nvars; clauses = List.rev !clauses }

let print ppf { nvars; clauses } =
  Format.fprintf ppf "p cnf %d %d@." nvars (List.length clauses);
  let pp_clause ppf c =
    List.iter (fun l -> Format.fprintf ppf "%d " (Lit.to_dimacs l)) c;
    Format.fprintf ppf "0@."
  in
  List.iter (pp_clause ppf) clauses

let load_into solver { nvars; clauses } =
  let base = Solver.nvars solver in
  for _ = 1 to nvars do
    ignore (Solver.new_var solver)
  done;
  let shift l = Lit.make (base + Lit.var l) (Lit.sign l) in
  List.iter (fun c -> Solver.add_clause solver (List.map shift c)) clauses
