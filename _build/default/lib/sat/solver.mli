(** CDCL Boolean satisfiability solver.

    A from-scratch conflict-driven clause-learning solver in the Chaff/MiniSat
    family, standing in for the zChaff 2001.2.17 engine used by the paper:
    two-watched-literal propagation, VSIDS branching with phase saving,
    first-UIP clause learning with basic self-subsumption minimization,
    activity-driven learnt-clause deletion and Luby restarts.

    Clauses may be added after a [solve] call returned (the solver backtracks
    to the root level first), which is what the lazy CVC-style refinement loop
    relies on. *)

type t

type result =
  | Sat
  | Unsat
  | Unknown  (** conflict budget or deadline exhausted *)

type stats = {
  conflicts : int;  (** conflict clauses learned, the paper's Fig. 2 metric *)
  decisions : int;
  propagations : int;
  restarts : int;
  clauses : int;  (** problem clauses currently attached *)
  learnts : int;  (** learnt clauses currently attached *)
  max_vars : int;
}

val create : unit -> t

val start_proof : t -> Proof.t
(** Enables DRUP proof logging (from a fresh solver, before any clause is
    added) and returns the trace being built; verify it afterwards with
    {!Drup_check}. Logging costs memory proportional to the learned-clause
    traffic. *)

val new_var : t -> int
(** Allocates the next variable; returns its index (dense, from 0). *)

val nvars : t -> int

val add_clause : t -> Lit.t list -> unit
(** Adds a clause. Tautologies are dropped; literals false at the root level
    are removed; an empty or root-contradicting clause makes the instance
    unsatisfiable. May be called between [solve] calls. *)

val solve :
  ?deadline:Sepsat_util.Deadline.t -> ?conflict_budget:int -> t -> result

val value : t -> Lit.t -> bool
(** Model value of a literal after [solve] returned [Sat].
    @raise Invalid_argument if no model is available. *)

val model : t -> bool array
(** Model as an array indexed by variable, after [Sat].
    @raise Invalid_argument if no model is available. *)

val export_cnf : t -> int * Lit.t list list
(** [(nvars, clauses)]: the active problem clauses plus the root-level unit
    facts — equisatisfiable with everything added so far. Learnt clauses are
    not included. Feed to {!Dimacs.print} via its [cnf] record for
    interchange with external solvers. *)

val stats : t -> stats

val pp_stats : Format.formatter -> stats -> unit
