lib/sat/proof.mli: Format Lit
