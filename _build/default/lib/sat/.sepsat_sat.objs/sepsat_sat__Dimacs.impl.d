lib/sat/dimacs.ml: Format List Lit Printf Solver String
