lib/sat/drup_check.ml: Array Format Hashtbl List Lit Proof Sepsat_util String
