lib/sat/solver.mli: Format Lit Proof Sepsat_util
