lib/sat/drup_check.mli: Proof
