lib/sat/solver.ml: Array Format List Lit Proof Sepsat_util
