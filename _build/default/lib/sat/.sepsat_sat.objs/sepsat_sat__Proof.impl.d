lib/sat/proof.ml: Format List Lit
