(** DIMACS CNF interchange.

    Lets the solver be exercised and debugged against standard CNF instances,
    and lets encodings be dumped for external inspection. *)

type cnf = { nvars : int; clauses : Lit.t list list }

val parse : string -> cnf
(** Parses DIMACS CNF text. Comments ([c] lines) and the [p cnf] header are
    accepted; literals are 1-based signed integers, clauses end with [0].
    @raise Failure on malformed input. *)

val print : Format.formatter -> cnf -> unit

val load_into : Solver.t -> cnf -> unit
(** Allocates the instance's variables in a fresh region of the solver and
    adds every clause. Variable [i] (1-based DIMACS) maps to solver variable
    [base + i - 1] where [base] is the solver's variable count beforehand. *)
