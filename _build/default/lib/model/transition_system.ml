module Ast = Sepsat_suf.Ast
module Interp = Sepsat_suf.Interp
module Decide = Sepsat.Decide
module Countermodel = Sepsat.Countermodel
module Verdict = Sepsat_sep.Verdict
module Deadline = Sepsat_util.Deadline

type assignment = [ `I of Ast.term | `B of Ast.formula ]

type t = {
  ctx : Ast.ctx;
  name : string;
  int_vars : string list;
  bool_vars : string list;
  init : step -> Ast.formula;
  next : step -> (string * assignment) list;
}

and step = {
  sys : t;
  idx : int;
  ints : (string * Ast.term) list;
  bools : (string * Ast.formula) list;
  input_ints : (string, Ast.term) Hashtbl.t;
  input_bools : (string, Ast.formula) Hashtbl.t;
}

let index step = step.idx

let int_var step name =
  match List.assoc_opt name step.ints with
  | Some t -> t
  | None ->
    invalid_arg
      (Printf.sprintf "Transition_system: unknown integer variable %S" name)

let bool_var step name =
  match List.assoc_opt name step.bools with
  | Some f -> f
  | None ->
    invalid_arg
      (Printf.sprintf "Transition_system: unknown Boolean variable %S" name)

let int_input step name =
  match Hashtbl.find_opt step.input_ints name with
  | Some t -> t
  | None ->
    let symbol =
      Ast.const step.sys.ctx
        (Ast.fresh_name step.sys.ctx (Printf.sprintf "%s?%d" name step.idx))
    in
    Hashtbl.add step.input_ints name symbol;
    symbol

let bool_input step name =
  match Hashtbl.find_opt step.input_bools name with
  | Some f -> f
  | None ->
    let symbol =
      Ast.bconst step.sys.ctx
        (Ast.fresh_name step.sys.ctx (Printf.sprintf "%s?%d" name step.idx))
    in
    Hashtbl.add step.input_bools name symbol;
    symbol

let define ~ctx ?(name = "system") ~int_vars ~bool_vars ~init ~next () =
  (match
     List.find_opt
       (fun v -> List.mem v bool_vars)
       (List.sort_uniq compare int_vars)
   with
  | Some v ->
    invalid_arg
      (Printf.sprintf "Transition_system: %S declared with both sorts" v)
  | None -> ());
  { ctx; name; int_vars; bool_vars; init; next }

let fresh_state sys ~tag ~idx =
  {
    sys;
    idx;
    ints =
      List.map
        (fun v ->
          (v, Ast.const sys.ctx (Ast.fresh_name sys.ctx (v ^ "@" ^ tag))))
        sys.int_vars;
    bools =
      List.map
        (fun v ->
          (v, Ast.bconst sys.ctx (Ast.fresh_name sys.ctx (v ^ "@" ^ tag))))
        sys.bool_vars;
    input_ints = Hashtbl.create 4;
    input_bools = Hashtbl.create 4;
  }

let advance step =
  let sys = step.sys in
  let bindings = sys.next step in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (v, _) ->
      if Hashtbl.mem seen v then
        invalid_arg
          (Printf.sprintf "Transition_system: %S assigned twice in next" v);
      Hashtbl.add seen v ())
    bindings;
  let take_int v =
    match List.assoc_opt v bindings with
    | None -> int_var step v
    | Some (`I t) -> t
    | Some (`B _) ->
      invalid_arg
        (Printf.sprintf "Transition_system: Boolean value for integer %S" v)
  in
  let take_bool v =
    match List.assoc_opt v bindings with
    | None -> bool_var step v
    | Some (`B f) -> f
    | Some (`I _) ->
      invalid_arg
        (Printf.sprintf "Transition_system: integer value for Boolean %S" v)
  in
  List.iter
    (fun (v, _) ->
      if not (List.mem v sys.int_vars || List.mem v sys.bool_vars) then
        invalid_arg
          (Printf.sprintf "Transition_system: assignment to undeclared %S" v))
    bindings;
  {
    sys;
    idx = step.idx + 1;
    ints = List.map (fun v -> (v, take_int v)) sys.int_vars;
    bools = List.map (fun v -> (v, take_bool v)) sys.bool_vars;
    input_ints = Hashtbl.create 4;
    input_bools = Hashtbl.create 4;
  }

(* -- Verification ---------------------------------------------------------- *)

type trace = {
  depth : int;
  states : (int * (string * string) list) list;
}

type result = Proved | Counterexample of trace | Inconclusive of string

let pp_result ppf = function
  | Proved -> Format.pp_print_string ppf "proved"
  | Inconclusive why -> Format.fprintf ppf "inconclusive (%s)" why
  | Counterexample { depth; states } ->
    Format.fprintf ppf "counterexample at depth %d:@." depth;
    List.iter
      (fun (i, values) ->
        Format.fprintf ppf "  step %d:" i;
        List.iter (fun (v, value) -> Format.fprintf ppf " %s=%s" v value) values;
        Format.fprintf ppf "@.")
      states

let decode_trace (r : Decide.result) assignment steps ~depth =
  let interp = Countermodel.lift r.Decide.elim assignment in
  let states =
    List.map
      (fun step ->
        let ints =
          List.map
            (fun (v, t) -> (v, string_of_int (Interp.eval_term interp t)))
            step.ints
        in
        let bools =
          List.map
            (fun (v, f) -> (v, string_of_bool (Interp.eval interp f)))
            step.bools
        in
        (step.idx, ints @ bools))
      steps
  in
  { depth; states }

let bmc ?method_ ?(deadline = Deadline.none) sys ~property ~depth =
  let s0 = fresh_state sys ~tag:"0" ~idx:0 in
  let init_f = sys.init s0 in
  let rec loop step visited =
    if step.idx > depth then Proved
    else begin
      let query = Ast.implies sys.ctx init_f (property step) in
      let r = Decide.decide ?method_ ~deadline sys.ctx query in
      match r.Decide.verdict with
      | Verdict.Valid -> loop (advance step) (visited @ [ step ])
      | Verdict.Invalid assignment ->
        Counterexample
          (decode_trace r assignment (visited @ [ step ]) ~depth:step.idx)
      | Verdict.Unknown why ->
        Inconclusive (Printf.sprintf "depth %d: %s" step.idx why)
    end
  in
  loop s0 []

let induction ?method_ ?(deadline = Deadline.none) ?(k = 1) sys ~property =
  if k < 1 then invalid_arg "Transition_system.induction: k must be >= 1";
  match bmc ?method_ ~deadline sys ~property ~depth:(k - 1) with
  | Counterexample _ as cex -> cex
  | Inconclusive why -> Inconclusive ("base case: " ^ why)
  | Proved ->
    (* Step case from an arbitrary (not necessarily reachable) state. *)
    let a0 = fresh_state sys ~tag:"any" ~idx:0 in
    let rec unroll step acc n =
      if n = 0 then List.rev acc
      else begin
        let succ = advance step in
        unroll succ (succ :: acc) (n - 1)
      end
    in
    let chain = a0 :: unroll a0 [] k in
    let hypotheses, conclusion =
      match List.rev chain with
      | last :: earlier -> (List.rev_map property earlier, property last)
      | [] -> assert false
    in
    let query =
      Ast.implies sys.ctx (Ast.and_list sys.ctx hypotheses) conclusion
    in
    let r = Decide.decide ?method_ ~deadline sys.ctx query in
    (match r.Decide.verdict with
    | Verdict.Valid -> Proved
    | Verdict.Invalid _ ->
      Inconclusive
        (Printf.sprintf
           "the induction step fails at k = %d (possibly spurious; try a \
            larger k or a strengthened property)"
           k)
    | Verdict.Unknown why -> Inconclusive ("step case: " ^ why))
