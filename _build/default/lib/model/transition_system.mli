(** Term-level transition systems with BMC and k-induction — a miniature of
    the UCLID flow the paper's benchmarks come from.

    A system has integer- and Boolean-sorted state variables, an initial-state
    predicate, and a *functional* next-state map: each step's variables are
    SUF terms built from the previous step's terms and fresh per-step inputs,
    so unrolling is symbolic simulation by construction (no transition
    relation, no quantifiers). Properties are SUF formulas over a step's
    state. Verification queries go through {!Sepsat.Decide} — the hybrid
    procedure by default — and counterexamples come back as concrete traces
    via {!Sepsat.Countermodel}. *)

module Ast = Sepsat_suf.Ast

type t

type step
(** The symbolic state at one unrolling depth. *)

val int_var : step -> string -> Ast.term
(** Current value of an integer state variable.
    @raise Invalid_argument on unknown names or sort mismatch. *)

val bool_var : step -> string -> Ast.formula

val int_input : step -> string -> Ast.term
(** A fresh integer input for this step (same name at the same step yields
    the same symbol; different steps get distinct symbols). *)

val bool_input : step -> string -> Ast.formula

val index : step -> int
(** The unrolling depth of this step (0 = initial). *)

type assignment = [ `I of Ast.term | `B of Ast.formula ]

val define :
  ctx:Ast.ctx ->
  ?name:string ->
  int_vars:string list ->
  bool_vars:string list ->
  init:(step -> Ast.formula) ->
  next:(step -> (string * assignment) list) ->
  unit ->
  t
(** [next] returns the new value of each state variable it changes (omitted
    variables hold their value).
    @raise Invalid_argument on duplicate or unsorted assignments. *)

(** {1 Verification} *)

type trace = {
  depth : int;  (** the step at which the property fails *)
  states : (int * (string * string) list) list;
      (** per step: variable name, printed value under the countermodel *)
}

type result = Proved | Counterexample of trace | Inconclusive of string

val pp_result : Format.formatter -> result -> unit

val bmc :
  ?method_:Sepsat.Decide.method_ ->
  ?deadline:Sepsat_util.Deadline.t ->
  t ->
  property:(step -> Ast.formula) ->
  depth:int ->
  result
(** Checks the property at every step up to [depth] from the initial states;
    [Proved] here means "no counterexample within the bound". *)

val induction :
  ?method_:Sepsat.Decide.method_ ->
  ?deadline:Sepsat_util.Deadline.t ->
  ?k:int ->
  t ->
  property:(step -> Ast.formula) ->
  result
(** k-induction (default [k = 1]): base — the property holds on the first
    [k] steps from the initial states; step — [k] consecutive
    property-satisfying steps from an arbitrary state imply the property at
    step [k+1]. [Proved] establishes the property at every reachable state;
    a step-case counterexample is reported as [Inconclusive] (it may be
    spurious), while a base-case counterexample is a real trace. *)
