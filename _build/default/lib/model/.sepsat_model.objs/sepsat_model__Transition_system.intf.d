lib/model/transition_system.mli: Format Sepsat Sepsat_suf Sepsat_util
