lib/model/transition_system.ml: Format Hashtbl List Printf Sepsat Sepsat_sep Sepsat_suf Sepsat_util
