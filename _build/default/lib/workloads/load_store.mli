(** Load-store queue address disambiguation (load-store-unit family).

    Models the paper's industrial load-store-unit benchmarks: [n] stores land
    at symbolic addresses hypothesized within the allocation window above the
    tail pointer, while [n] loads drain from the head; the memory is an
    uninterpreted [mem0] overlaid with the store values. Under the occupancy
    hypothesis [h + n − 1 < t] no load aliases any store, so every load
    returns the original memory value — succ/pred-heavy separation reasoning
    over a class with many constants and offsets up to the queue length.
    Small instances are the EIJ sweet spot of paper Fig. 3; large ones blow
    its translation up.

    With [~bug:true] the occupancy hypothesis covers only half the loads, so
    later loads may alias stores. *)

module Ast = Sepsat_suf.Ast

val formula : ?bug:bool -> Ast.ctx -> n_ops:int -> Ast.formula
