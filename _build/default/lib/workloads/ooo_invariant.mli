(** Out-of-order core timestamp invariant (invariant-checking family).

    Models the paper's out-of-order microprocessor invariant-checking
    benchmarks [11], the family where SD beats EIJ and HYBRID (paper Fig. 5):
    a window of in-flight instructions carries timestamp tags related by a
    sparse set of precedence constraints with small skews, and every entry's
    value is bound through the uninterpreted [data]. The invariant's valid
    consequences (skew weakenings, two-edge path bounds) need genuine
    difference reasoning.

    Structurally this reproduces the paper's description of why eager
    per-constraint encoding loses here: one large constant class whose
    per-class separation-predicate count stays moderate, while the [data]
    elimination chains compare all tags pairwise inside ITE guards — so the
    transitivity-constraint generation densifies and blows up; and every
    uninterpreted application sits under a negative equality, so almost
    nothing is a p-function application.

    With [~bug:true] the conclusion gains an ordering atom with no supporting
    precedence path, making the formula invalid. *)

module Ast = Sepsat_suf.Ast

val formula : ?bug:bool -> Ast.ctx -> n_entries:int -> Ast.formula
