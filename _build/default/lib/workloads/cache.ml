module Ast = Sepsat_suf.Ast

let formula ?(bug = false) ctx ~n_caches =
  let n = max 2 n_caches in
  let cst fmt = Format.kasprintf (Ast.const ctx) fmt in
  let modified = cst "M" and shared = cst "S" and invalid = cst "I" in
  let state = Array.init n (fun i -> cst "st%d" i) in
  let ident = Array.init n (fun i -> cst "id%d" i) in
  let requester = cst "req" in
  let neq a b = Ast.not_ ctx (Ast.eq ctx a b) in
  let state_distinct =
    [ neq modified shared; neq modified invalid; neq shared invalid ]
  in
  let id_distinct =
    if bug then []
    else
      List.concat
        (List.init n (fun i ->
             List.init (n - i - 1) (fun k -> neq ident.(i) ident.(i + k + 1))))
  in
  let is_m i = Ast.eq ctx state.(i) modified in
  let exclusive states =
    Ast.and_list ctx
      (List.concat
         (List.init n (fun i ->
              List.init (n - i - 1) (fun k ->
                  Ast.not_ ctx
                    (Ast.and_ ctx (states i) (states (i + k + 1)))))))
  in
  (* Write request by [req]: the matching cache takes Modified; any other
     Modified holder is downgraded to Invalid; the rest keep their state. *)
  let next =
    Array.init n (fun i ->
        Ast.tite ctx
          (Ast.eq ctx ident.(i) requester)
          modified
          (Ast.tite ctx (is_m i) invalid state.(i)))
  in
  let is_m' i = Ast.eq ctx next.(i) modified in
  (* Second protocol consequence: a cache Modified after the step is the
     requester. *)
  let owner_is_requester =
    Ast.and_list ctx
      (List.init n (fun i ->
           Ast.implies ctx (is_m' i) (Ast.eq ctx ident.(i) requester)))
  in
  let hypotheses =
    Ast.and_list ctx (state_distinct @ id_distinct @ [ exclusive is_m ])
  in
  let conclusion = Ast.and_ ctx (exclusive is_m') owner_is_requester in
  Ast.implies ctx hypotheses conclusion
