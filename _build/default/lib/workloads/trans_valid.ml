module Ast = Sepsat_suf.Ast

let formula ?(bug = false) ctx ~n_blocks ~seed =
  let n = max 1 n_blocks in
  let rng = Random.State.make [| seed; 0x7c3a55 |] in
  let cst fmt = Format.kasprintf (Ast.const ctx) fmt in
  let equalities = ref [] in
  let prev_x = ref None in
  for b = 0 to n - 1 do
    let x = cst "x%d" b and y = cst "y%d" b in
    let f t = Ast.app ctx (Printf.sprintf "op%d" b) [ t ] in
    (* Blocks share live-in variables with their predecessor, so the whole
       run lands in one constant class without compounding term sizes. *)
    let u =
      match !prev_x with
      | Some px when Random.State.bool rng -> px
      | Some _ | None ->
        Ast.plus ctx x (if Random.State.int rng 4 = 0 then 1 else 0)
    in
    let w = Ast.app ctx "sel" [ y ] in
    let guard =
      match Random.State.int rng 4 with
      | 0 -> Ast.eq ctx x y
      | 1 -> Ast.lt ctx x y
      | 2 -> Ast.lt ctx y x
      | _ -> Ast.lt ctx x (Ast.plus ctx y 1)
    in
    let source = Ast.tite ctx guard (f u) (f w) in
    let target =
      if bug && b = n - 1 then f (Ast.tite ctx guard w u)
      else f (Ast.tite ctx guard u w)
    in
    equalities := Ast.eq ctx source target :: !equalities;
    prev_x := Some x
  done;
  Ast.and_list ctx (List.rev !equalities)
