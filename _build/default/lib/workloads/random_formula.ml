module Ast = Sepsat_suf.Ast

type config = {
  n_consts : int;
  n_bconsts : int;
  n_funcs : int;
  n_preds : int;
  max_depth : int;
  max_offset : int;
  allow_arith : bool;
  allow_apps : bool;
}

let default =
  {
    n_consts = 4;
    n_bconsts = 2;
    n_funcs = 2;
    n_preds = 1;
    max_depth = 4;
    max_offset = 2;
    allow_arith = true;
    allow_apps = true;
  }

let small =
  {
    n_consts = 3;
    n_bconsts = 1;
    n_funcs = 1;
    n_preds = 1;
    max_depth = 3;
    max_offset = 1;
    allow_arith = true;
    allow_apps = true;
  }

let equality_only = { default with allow_arith = false }

let generate cfg ctx ~seed =
  let rng = Random.State.make [| seed; 0x5ef5a7 |] in
  let pick n = Random.State.int rng (max n 1) in
  let const () = Ast.const ctx (Printf.sprintf "x%d" (pick cfg.n_consts)) in
  let bconst () = Ast.bconst ctx (Printf.sprintf "b%d" (pick cfg.n_bconsts)) in
  let rec term depth =
    let choices =
      if depth <= 0 then [ `Const ]
      else
        [ `Const; `Const ]
        @ (if cfg.allow_arith then [ `Offset ] else [])
        @ (if cfg.allow_apps && cfg.n_funcs > 0 then [ `App; `App ] else [])
        @ [ `Ite ]
    in
    match List.nth choices (pick (List.length choices)) with
    | `Const -> const ()
    | `Offset ->
      let k = pick ((2 * cfg.max_offset) + 1) - cfg.max_offset in
      Ast.plus ctx (term (depth - 1)) k
    | `App ->
      let f = Printf.sprintf "f%d" (pick cfg.n_funcs) in
      let arity = 1 + pick 2 in
      Ast.app ctx
        (Printf.sprintf "%s_%d" f arity)
        (List.init arity (fun _ -> term (depth - 1)))
    | `Ite -> Ast.tite ctx (formula (depth - 1)) (term (depth - 1)) (term (depth - 1))
  and formula depth =
    let choices =
      if depth <= 0 then [ `Atom; `Bconst ]
      else
        [ `Atom; `Atom; `Not; `And; `Or; `Implies; `Bconst ]
        @ if cfg.allow_apps && cfg.n_preds > 0 then [ `Papp ] else []
    in
    match List.nth choices (pick (List.length choices)) with
    | `Atom ->
      let t1 = term (depth - 1) and t2 = term (depth - 1) in
      if cfg.allow_arith && pick 2 = 0 then Ast.lt ctx t1 t2 else Ast.eq ctx t1 t2
    | `Bconst -> bconst ()
    | `Not -> Ast.not_ ctx (formula (depth - 1))
    | `And -> Ast.and_ ctx (formula (depth - 1)) (formula (depth - 1))
    | `Or -> Ast.or_ ctx (formula (depth - 1)) (formula (depth - 1))
    | `Implies -> Ast.implies ctx (formula (depth - 1)) (formula (depth - 1))
    | `Papp ->
      let p = Printf.sprintf "p%d" (pick cfg.n_preds) in
      Ast.papp ctx p [ term (depth - 1) ]
  in
  formula cfg.max_depth
