lib/workloads/device_driver.ml: Format List Printf Random Sepsat_suf
