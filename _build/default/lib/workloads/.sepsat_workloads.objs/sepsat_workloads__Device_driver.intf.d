lib/workloads/device_driver.mli: Sepsat_suf
