lib/workloads/pipeline.ml: Array Format List Random Sepsat_suf
