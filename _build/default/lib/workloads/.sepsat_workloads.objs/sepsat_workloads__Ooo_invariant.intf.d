lib/workloads/ooo_invariant.mli: Sepsat_suf
