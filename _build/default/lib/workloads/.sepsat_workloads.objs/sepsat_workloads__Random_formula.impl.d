lib/workloads/random_formula.ml: List Printf Random Sepsat_suf
