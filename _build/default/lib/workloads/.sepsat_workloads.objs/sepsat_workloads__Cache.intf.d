lib/workloads/cache.mli: Sepsat_suf
