lib/workloads/load_store.mli: Sepsat_suf
