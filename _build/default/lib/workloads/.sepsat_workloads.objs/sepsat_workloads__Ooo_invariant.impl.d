lib/workloads/ooo_invariant.ml: Array Format List Random Sepsat_suf
