lib/workloads/cache.ml: Array Format List Sepsat_suf
