lib/workloads/load_store.ml: Array Format List Sepsat_suf
