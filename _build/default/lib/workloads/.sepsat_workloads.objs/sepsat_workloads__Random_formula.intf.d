lib/workloads/random_formula.mli: Sepsat_suf
