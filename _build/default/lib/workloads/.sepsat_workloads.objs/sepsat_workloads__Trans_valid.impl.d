lib/workloads/trans_valid.ml: Format List Printf Random Sepsat_suf
