lib/workloads/suite.mli: Sepsat_suf
