lib/workloads/pipeline.mli: Sepsat_suf
