lib/workloads/suite.ml: Cache Device_driver List Load_store Ooo_invariant Pipeline Printf Sepsat_suf Trans_valid
