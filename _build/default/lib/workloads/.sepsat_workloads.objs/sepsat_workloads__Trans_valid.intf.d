lib/workloads/trans_valid.mli: Sepsat_suf
