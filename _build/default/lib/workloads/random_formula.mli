(** Deterministic random SUF formulas.

    Small random formulas over a handful of constants, functions and
    predicates, used by the property-based tests to cross-check the decision
    procedures against the brute-force oracle. Validity of a generated
    formula is not known a priori — that is the point. *)

module Ast = Sepsat_suf.Ast

type config = {
  n_consts : int;  (** symbolic constants drawn from *)
  n_bconsts : int;
  n_funcs : int;  (** unary/binary uninterpreted functions *)
  n_preds : int;
  max_depth : int;
  max_offset : int;  (** succ/pred chain length *)
  allow_arith : bool;  (** succ/pred and [<] atoms *)
  allow_apps : bool;  (** uninterpreted applications *)
}

val default : config

val small : config
(** Few constants and shallow depth — cheap enough for the brute oracle. *)

val equality_only : config
(** No arithmetic: the EUF fragment. *)

val generate : config -> Ast.ctx -> seed:int -> Ast.formula
