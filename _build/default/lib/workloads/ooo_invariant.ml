module Ast = Sepsat_suf.Ast

(* The invariant relates the timestamps of in-flight instructions through a
   sparse window of ordering constraints (issue/execute/commit precedences
   with small bounded skews), and binds every entry's value through the
   uninterpreted [data]. The interesting structural properties, per the
   paper's §5 discussion of these benchmarks:
   - one large constant class with relatively few separation predicates,
     whose elimination graph nonetheless densifies (the [data] chains compare
     all tags pairwise inside ITE guards), so EIJ's transitivity constraints
     explode;
   - every uninterpreted application sits under a negative equality, so
     almost nothing is a p-function application. *)

let formula ?(bug = false) ctx ~n_entries =
  let n = max 4 n_entries in
  let rng = Random.State.make [| n; 0x0005e4 |] in
  let cst fmt = Format.kasprintf (Ast.const ctx) fmt in
  let tag = Array.init n (fun i -> cst "a%d" i) in
  let value = Array.init n (fun i -> cst "v%d" i) in
  let data a = Ast.app ctx "data" [ a ] in
  let window = max 2 (n / 3) in
  (* Sparse precedence edges i -> j (i < j) with small skews. *)
  let edges = ref [] in
  for i = 0 to n - 2 do
    let degree = 1 + Random.State.int rng 2 in
    for _ = 1 to degree do
      let j = i + 1 + Random.State.int rng (min window (n - 1 - i)) in
      let off = Random.State.int rng 4 - 1 in
      edges := (i, j, off) :: !edges
    done
  done;
  let edges = Array.of_list (List.rev !edges) in
  let edge_atom (i, j, off) = Ast.lt ctx tag.(i) (Ast.plus ctx tag.(j) off) in
  let hypotheses =
    Array.to_list (Array.map edge_atom edges)
    @ List.init n (fun i -> Ast.eq ctx value.(i) (data tag.(i)))
  in
  (* Conclusions: weakenings of single edges and of two-edge paths — valid
     consequences needing genuine difference reasoning. *)
  let weakenings =
    Array.to_list
      (Array.map (fun (i, j, off) -> edge_atom (i, j, off + 1)) edges)
  in
  let paths = ref [] in
  Array.iter
    (fun (i, j, o1) ->
      Array.iter
        (fun (j', k, o2) ->
          if j = j' && List.length !paths < 2 * n then
            let slack = Random.State.int rng 2 in
            paths :=
              Ast.lt ctx tag.(i) (Ast.plus ctx tag.(k) (o1 + o2 - 1 + slack))
              :: !paths)
        edges)
    edges;
  let rebindings = List.init n (fun i -> Ast.eq ctx value.(i) (data tag.(i))) in
  let unjustified =
    (* No precedence path leads from a later entry back to an earlier one,
       so this atom does not follow from the hypotheses. *)
    if bug then [ Ast.lt ctx tag.(n - 1) tag.(0) ] else []
  in
  let conclusion =
    Ast.and_list ctx (weakenings @ !paths @ rebindings @ unjustified)
  in
  Ast.implies ctx (Ast.and_list ctx hypotheses) conclusion
