(** Device-driver lock/counter safety (software family).

    Models the paper's Blast device-driver benchmarks [10]: a bounded program
    path interleaves conditional lock acquisitions with counter updates. The
    path condition collects branch guards — counter bounds against a symbolic
    limit, and "acquire only when unlocked" lock tests over an ITE-chained
    lock state — and the safety assertion (no double acquire, counter still
    within a slack of the limit) follows from them. Small formulas with few
    separation predicates: the region of paper Fig. 3 where EIJ shines.

    With [~bug:true] the counter assertion is strengthened beyond what the
    guards imply. *)

module Ast = Sepsat_suf.Ast

val formula : ?bug:bool -> Ast.ctx -> n_steps:int -> seed:int -> Ast.formula
