module Ast = Sepsat_suf.Ast

let shuffle rng a =
  let a = Array.copy a in
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  a

let formula ?(bug = false) ctx ~n_instructions ~seed =
  let n = max 2 n_instructions in
  let rng = Random.State.make [| seed; 0x9d7e11 |] in
  let cst fmt = Format.kasprintf (Ast.const ctx) fmt in
  let init idx = Ast.app ctx "rf0" [ idx ] in
  let dst = Array.init n (fun i -> cst "d%d" i) in
  let src1 = Array.init n (fun i -> cst "s1_%d" i) in
  let src2 = Array.init n (fun i -> cst "s2_%d" i) in
  let opc = Array.init n (fun i -> cst "op%d" i) in
  (* All operands come from the initial state: an independent issue bundle. *)
  let res =
    Array.init n (fun i ->
        Ast.app ctx "alu" [ opc.(i); init src1.(i); init src2.(i) ])
  in
  (* The buggy implementation swaps the last instruction's ALU operands —
     invalid, since alu is uninterpreted. *)
  let impl_res =
    Array.init n (fun i ->
        if bug && i = n - 1 then
          Ast.app ctx "alu" [ opc.(i); init src2.(i); init src1.(i) ]
        else res.(i))
  in
  (* Reading a register after committing the results in the given order:
     the latest write wins. *)
  let read_after results order idx =
    Array.fold_left
      (fun acc i -> Ast.tite ctx (Ast.eq ctx idx dst.(i)) results.(i) acc)
      (init idx) order
  in
  let program_order = Array.init n (fun i -> i) in
  let buffer_order =
    let o = shuffle rng program_order in
    if o = program_order then Array.init n (fun i -> (i + 1) mod n) else o
  in
  let probes = [ cst "probe0"; cst "probe1" ] in
  let distinct_pairs = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      distinct_pairs :=
        Ast.not_ ctx (Ast.eq ctx dst.(i) dst.(j)) :: !distinct_pairs
    done
  done;
  let agree idx =
    Ast.eq ctx
      (read_after res program_order idx)
      (read_after impl_res buffer_order idx)
  in
  let conclusion =
    Ast.and_list ctx
      (List.map agree probes @ Array.to_list (Array.map (fun d -> agree d) dst))
  in
  Ast.implies ctx (Ast.and_list ctx !distinct_pairs) conclusion
