(** Cache-coherence exclusivity (protocol-verification family).

    Models the paper's parameterized cache-coherence benchmark [9],
    instantiated at [n] caches: every cache holds a protocol state compared
    against the distinguished constants [M]/[S]/[I]; a write request by cache
    [r] grants it Modified and downgrades any other Modified holder. Given
    distinct cache identifiers and the single-writer invariant before the
    step, the invariant holds after — an equality/ITE formula in the style of
    predicate-abstraction queries.

    With [~bug:true] the identifier-distinctness hypothesis is dropped:
    aliased caches can both end up Modified. *)

module Ast = Sepsat_suf.Ast

val formula : ?bug:bool -> Ast.ctx -> n_caches:int -> Ast.formula
