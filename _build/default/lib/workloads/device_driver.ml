module Ast = Sepsat_suf.Ast

let formula ?(bug = false) ctx ~n_steps ~seed =
  let n = max 1 n_steps in
  let rng = Random.State.make [| seed; 0x3b19c2 |] in
  let cst fmt = Format.kasprintf (Ast.const ctx) fmt in
  let counter = cst "cnt" and limit = cst "lim" in
  let locked = cst "LOCKED" and unlocked = cst "UNLOCKED" in
  let lock0 = cst "lock0" in
  (* Loop-entry condition, so the counter is bounded even on paths with no
     guarded increment. *)
  let guards =
    ref
      [ Ast.lt ctx counter limit; Ast.not_ ctx (Ast.eq ctx locked unlocked) ]
  in
  let lock = ref lock0 in
  let offset = ref 0 in
  let max_guarded = ref 0 in
  let assertions = ref [] in
  for i = 0 to n - 1 do
    match Random.State.int rng 3 with
    | 0 ->
      (* Conditional acquire behind a fresh branch input. *)
      let br = Ast.bconst ctx (Printf.sprintf "br%d" i) in
      guards :=
        Ast.implies ctx br (Ast.eq ctx !lock unlocked) :: !guards;
      (* Safety: no acquire while already locked. *)
      assertions :=
        Ast.not_ ctx (Ast.and_ ctx br (Ast.eq ctx !lock locked)) :: !assertions;
      lock := Ast.tite ctx br locked !lock
    | 1 ->
      (* Increment guarded by a bound test on the counter. *)
      guards := Ast.lt ctx (Ast.plus ctx counter !offset) limit :: !guards;
      max_guarded := max !max_guarded !offset;
      incr offset
    | _ ->
      (* Unguarded decrement. *)
      offset := !offset - 1
  done;
  (* The counter never strayed more than one past the last guarded bound. *)
  let slack = if bug then -1 else 2 in
  let counter_safe =
    Ast.lt ctx
      (Ast.plus ctx counter (!max_guarded + 1))
      (Ast.plus ctx limit slack)
  in
  let released_consistent =
    (* The final lock state is one of the two protocol constants or the
       initial state. *)
    Ast.or_list ctx
      [
        Ast.eq ctx !lock locked;
        Ast.eq ctx !lock unlocked;
        Ast.eq ctx !lock lock0;
      ]
  in
  Ast.implies ctx
    (Ast.and_list ctx (List.rev !guards))
    (Ast.and_list ctx (counter_safe :: released_consistent :: List.rev !assertions))
