(** Superscalar commit-reordering correctness (processor-verification
    family).

    Models the paper's pipelined-processor benchmarks [4, 8]: a bundle of
    instructions reads operands from the architectural register file through
    an uninterpreted [rf0], computes results with an uninterpreted [alu], and
    commits them — the specification in program order, the implementation in
    a (seeded) permuted order, as a write-buffer would. Under pairwise
    distinct destination registers the two final states agree at every probe
    register: an equality-and-ITE-heavy valid formula whose proof needs case
    splitting over register aliasing plus functional consistency.

    With [~bug:true] one distinctness hypothesis is dropped, making the
    formula invalid (the classic write-after-write hazard). *)

module Ast = Sepsat_suf.Ast

val formula :
  ?bug:bool -> Ast.ctx -> n_instructions:int -> seed:int -> Ast.formula
