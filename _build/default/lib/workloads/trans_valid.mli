(** Translation validation of if-conversion (software family).

    Models the paper's Code Validation tool benchmarks [13]: a source program
    block computes [ITE(g, f(u), f(w))] — a branch with the operation in both
    arms — while the scheduled target hoists the operation past the branch
    and computes [f(ITE(g, u, w))]. The blocks' outputs must agree; the proof
    needs case splits on the (equality or arithmetic) guards plus functional
    consistency of the uninterpreted operations. Blocks are chained so later
    guards mention earlier outputs.

    With [~bug:true] the last block's target branch arms are swapped — the
    classic selection-inversion miscompilation. *)

module Ast = Sepsat_suf.Ast

val formula : ?bug:bool -> Ast.ctx -> n_blocks:int -> seed:int -> Ast.formula
