module Ast = Sepsat_suf.Ast

(* A load-store queue with symbolic store addresses: stores land at
   addresses addr_k hypothesized at or above the tail pointer, loads drain
   from the head. Address disambiguation — every load address stays strictly
   below the tail, hence below every store — makes all loads read the
   original memory. Arithmetic-heavy separation reasoning with offsets up to
   the queue length, over a class with many constants: small instances are
   EIJ's sweet spot, large ones blow its translation up. *)

let formula ?(bug = false) ctx ~n_ops =
  let n = max 1 n_ops in
  let cst fmt = Format.kasprintf (Ast.const ctx) fmt in
  let head = cst "h" and tail = cst "t" in
  let addr = Array.init n (fun k -> cst "sa%d" k) in
  let stored = Array.init n (fun k -> cst "w%d" k) in
  let mem0 idx = Ast.app ctx "mem0" [ idx ] in
  (* Memory after the stores: w_k sits at address addr_k. *)
  let read a =
    let rec overlay k =
      if k < 0 then mem0 a
      else Ast.tite ctx (Ast.eq ctx a addr.(k)) stored.(k) (overlay (k - 1))
    in
    overlay (n - 1)
  in
  (* Store address k sits in the allocation window [t+k, t+n]. *)
  let window =
    List.concat
      (List.init n (fun k ->
           [
             Ast.le ctx (Ast.plus ctx tail k) addr.(k);
             Ast.le ctx addr.(k) (Ast.plus ctx tail n);
           ]))
  in
  (* Occupancy: every load address h .. h+n-1 stays below the tail. *)
  let slack = if bug then (n - 1) / 2 else n - 1 in
  let occupancy = Ast.lt ctx (Ast.plus ctx head slack) tail in
  let loads_clean =
    List.init n (fun d ->
        let a = Ast.plus ctx head d in
        Ast.eq ctx (read a) (mem0 a))
  in
  (* Pointer sanity: loads stay below every store slot. *)
  let sanity =
    List.init n (fun k ->
        Ast.lt ctx (Ast.plus ctx head (n - 1)) (Ast.plus ctx addr.(k) 1))
  in
  Ast.implies ctx
    (Ast.and_list ctx (occupancy :: window))
    (Ast.and_list ctx (loads_clean @ sanity))
