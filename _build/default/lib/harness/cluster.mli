(** One-dimensional clustering for SEP_THOLD selection (paper §4.1).

    Given the sorted sequence of normalized EIJ run-times over a benchmark
    sample, the paper splits it at the index minimizing the sum of the two
    parts' variances (squared-distance clustering in one dimension), then
    takes as threshold the smallest multiple of 100 above the
    separation-predicate count at the split point. *)

val best_split : float array -> int
(** [best_split values] for a sorted array returns [k] (1-based count of the
    lower cluster, in [1, n-1]) minimizing
    [variance values[0..k-1] + variance values[k..n-1]].
    @raise Invalid_argument if fewer than 2 values. *)

val variance : float array -> float
(** Population variance; 0 for empty or singleton arrays. *)

val select_threshold : (int * float) list -> int
(** [select_threshold samples] where each sample is (separation-predicate
    count, normalized EIJ run-time): sorts by run-time, finds the best
    variance split, and returns the smallest multiple of 100 strictly greater
    than the predicate count at the split point. *)
