let variance a =
  let n = Array.length a in
  if n <= 1 then 0.
  else begin
    let mean = Array.fold_left ( +. ) 0. a /. float_of_int n in
    let sq = Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. a in
    sq /. float_of_int n
  end

let best_split values =
  let n = Array.length values in
  if n < 2 then invalid_arg "Cluster.best_split: need at least 2 values";
  let cost k =
    variance (Array.sub values 0 k) +. variance (Array.sub values k (n - k))
  in
  let best = ref 1 and best_cost = ref (cost 1) in
  for k = 2 to n - 1 do
    let c = cost k in
    if c < !best_cost then begin
      best := k;
      best_cost := c
    end
  done;
  !best

let select_threshold samples =
  let sorted =
    List.sort (fun (_, t1) (_, t2) -> compare t1 t2) samples |> Array.of_list
  in
  let times = Array.map snd sorted in
  let k = best_split times in
  let n_k = fst sorted.(k - 1) in
  ((n_k / 100) + 1) * 100
