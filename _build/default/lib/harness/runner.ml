module Ast = Sepsat_suf.Ast
module Suite = Sepsat_workloads.Suite
module Decide = Sepsat.Decide
module Verdict = Sepsat_sep.Verdict
module Deadline = Sepsat_util.Deadline
module Solver = Sepsat_sat.Solver
module Hybrid = Sepsat_encode.Hybrid

type outcome = Completed | Timed_out | Blew_up

type row = {
  bench : string;
  family : string;
  invariant_checking : bool;
  method_ : Decide.method_;
  size : int;
  sep_cnt : int;
  verdict : Verdict.t;
  outcome : outcome;
  total_time : float;
  translate_time : float;
  sat_time : float;
  cnf_clauses : int;
  conflicts : int;
  trans_constraints : int;
}

(* The separation-predicate estimate is a property of the formula, not of
   the method, so compute it through the standard pipeline. *)
let sep_count ctx formula =
  let elim = Sepsat_suf.Elim.eliminate ctx formula in
  let normalized = Sepsat_sep.Normal.normalize ctx elim.Sepsat_suf.Elim.formula in
  let classes =
    Sepsat_sep.Classes.build ~p_consts:elim.Sepsat_suf.Elim.p_consts normalized
  in
  Sepsat_sep.Classes.total_sep_cnt classes

let run ?(deadline_s = 30.) method_ (bench : Suite.benchmark) =
  let ctx = Ast.create_ctx () in
  let formula = bench.Suite.build ctx in
  let size = Ast.size formula in
  let sep_cnt = sep_count ctx formula in
  let deadline = Deadline.after deadline_s in
  let r = Decide.decide ~method_ ~deadline ctx formula in
  let outcome =
    match r.Decide.verdict with
    | Verdict.Valid | Verdict.Invalid _ -> Completed
    | Verdict.Unknown "translation blowup" -> Blew_up
    | Verdict.Unknown _ -> Timed_out
  in
  {
    bench = bench.Suite.name;
    family = Suite.family_name bench.Suite.family;
    invariant_checking = bench.Suite.invariant_checking;
    method_;
    size;
    sep_cnt;
    verdict = r.Decide.verdict;
    outcome;
    total_time = r.Decide.total_time;
    translate_time = r.Decide.translate_time;
    sat_time = r.Decide.sat_time;
    cnf_clauses = r.Decide.cnf_clauses;
    conflicts =
      (match r.Decide.sat_stats with
      | Some st -> st.Solver.conflicts
      | None -> 0);
    trans_constraints =
      (match r.Decide.encode_stats with
      | Some es -> es.Hybrid.trans_constraints
      | None -> 0);
  }

let penalized_time ~deadline_s row =
  match row.outcome with
  | Completed -> row.total_time
  | Timed_out | Blew_up -> deadline_s

let normalized_time ~deadline_s row =
  penalized_time ~deadline_s row /. (float_of_int (max row.size 1) /. 1000.)
