lib/harness/ascii_plot.ml: Array Format List String
