lib/harness/cluster.mli:
