lib/harness/experiments.ml: Ascii_plot Cluster Format List Printf Runner Sepsat Sepsat_encode Sepsat_prop Sepsat_sat Sepsat_sep Sepsat_suf Sepsat_util Sepsat_workloads
