lib/harness/runner.mli: Sepsat Sepsat_sep Sepsat_workloads
