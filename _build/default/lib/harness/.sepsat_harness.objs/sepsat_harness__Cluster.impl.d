lib/harness/cluster.ml: Array List
