lib/harness/runner.ml: Sepsat Sepsat_encode Sepsat_sat Sepsat_sep Sepsat_suf Sepsat_util Sepsat_workloads
