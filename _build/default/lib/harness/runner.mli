(** Uniform benchmark execution with statistics collection. *)

module Suite = Sepsat_workloads.Suite
module Decide = Sepsat.Decide
module Verdict = Sepsat_sep.Verdict

type outcome = Completed | Timed_out | Blew_up

type row = {
  bench : string;
  family : string;
  invariant_checking : bool;
  method_ : Decide.method_;
  size : int;  (** SUF DAG nodes *)
  sep_cnt : int;  (** separation-predicate estimate of the formula *)
  verdict : Verdict.t;
  outcome : outcome;
  total_time : float;
  translate_time : float;
  sat_time : float;
  cnf_clauses : int;
  conflicts : int;  (** learned conflict clauses (0 for SVC) *)
  trans_constraints : int;
}

val run : ?deadline_s:float -> Decide.method_ -> Suite.benchmark -> row
(** Builds the benchmark in a fresh context and decides it. Default deadline
    30 seconds of CPU time (the laptop-scale stand-in for the paper's
    30-minute limit). *)

val penalized_time : deadline_s:float -> row -> float
(** Total time, with timeouts/blowups charged the full deadline — the
    convention used when plotting against the paper's "timeout" gridline. *)

val normalized_time : deadline_s:float -> row -> float
(** {!penalized_time} per thousand DAG nodes (the paper's sec/Knodes
    normalization for Fig. 3). *)
