(* Tests for the benchmark generators: determinism, structural signatures,
   and the suite's shape. *)

module Ast = Sepsat_suf.Ast
module Elim = Sepsat_suf.Elim
module Sset = Sepsat_util.Sset
module Suite = Sepsat_workloads.Suite
module Pipeline = Sepsat_workloads.Pipeline
module Load_store = Sepsat_workloads.Load_store
module Ooo = Sepsat_workloads.Ooo_invariant
module Cache = Sepsat_workloads.Cache
module Trans_valid = Sepsat_workloads.Trans_valid
module Device_driver = Sepsat_workloads.Device_driver
module Random_formula = Sepsat_workloads.Random_formula

let test_determinism () =
  (* generators are deterministic: rebuilt in the same context, the formula
     hash-conses to the identical node (different families need different
     contexts, since symbol names may clash across families) *)
  let ctx = Ast.create_ctx () in
  let f1 = Pipeline.formula ctx ~n_instructions:5 ~seed:3 in
  let f2 = Pipeline.formula ctx ~n_instructions:5 ~seed:3 in
  Alcotest.(check bool) "hash-consed equal" true (f1 == f2);
  let ctx = Ast.create_ctx () in
  let g1 = Trans_valid.formula ctx ~n_blocks:5 ~seed:3 in
  let g2 = Trans_valid.formula ctx ~n_blocks:5 ~seed:3 in
  Alcotest.(check bool) "tv deterministic" true (g1 == g2);
  let ctx = Ast.create_ctx () in
  let r1 = Random_formula.generate Random_formula.default ctx ~seed:9 in
  let r2 = Random_formula.generate Random_formula.default ctx ~seed:9 in
  Alcotest.(check bool) "random deterministic" true (r1 == r2)

let test_bug_differs () =
  List.iter
    (fun (name, build) ->
      let ctx = Ast.create_ctx () in
      let good : Ast.formula = build ?bug:(Some false) ctx in
      let bad : Ast.formula = build ?bug:(Some true) ctx in
      Alcotest.(check bool) (name ^ " differs") false (good == bad))
    [
      ("pipeline", fun ?bug ctx -> Pipeline.formula ?bug ctx ~n_instructions:4 ~seed:1);
      ("load-store", fun ?bug ctx -> Load_store.formula ?bug ctx ~n_ops:4);
      ("ooo", fun ?bug ctx -> Ooo.formula ?bug ctx ~n_entries:6);
      ("cache", fun ?bug ctx -> Cache.formula ?bug ctx ~n_caches:3);
      ("tv", fun ?bug ctx -> Trans_valid.formula ?bug ctx ~n_blocks:4 ~seed:1);
      ("drv", fun ?bug ctx -> Device_driver.formula ?bug ctx ~n_steps:6 ~seed:1);
    ]

let test_sizes_grow () =
  let size build n =
    let ctx = Ast.create_ctx () in
    Ast.size (build ctx n)
  in
  let grows build =
    size build 4 < size build 8 && size build 8 < size build 16
  in
  Alcotest.(check bool) "pipeline grows" true
    (grows (fun ctx n -> Pipeline.formula ctx ~n_instructions:n ~seed:1));
  Alcotest.(check bool) "lsu grows" true
    (grows (fun ctx n -> Load_store.formula ctx ~n_ops:n));
  Alcotest.(check bool) "ooo grows" true
    (grows (fun ctx n -> Ooo.formula ctx ~n_entries:n));
  Alcotest.(check bool) "cache grows" true
    (grows (fun ctx n -> Cache.formula ctx ~n_caches:n))

let p_fraction formula ctx =
  let elim = Elim.eliminate ctx formula in
  let total =
    List.length (Ast.functions elim.Elim.formula)
  in
  if total = 0 then 0.
  else float_of_int (Sset.cardinal elim.Elim.p_consts) /. float_of_int total

let test_signatures () =
  (* invariant-checking formulas: almost no p-function applications *)
  let ctx = Ast.create_ctx () in
  let ooo = Ooo.formula ctx ~n_entries:10 in
  Alcotest.(check bool) "ooo p-fraction ~ 0" true (p_fraction ooo ctx < 0.05);
  (* pipeline formulas: a healthy share of p applications *)
  let ctx = Ast.create_ctx () in
  let pipe = Pipeline.formula ctx ~n_instructions:6 ~seed:0 in
  Alcotest.(check bool) "pipeline has p consts" true (p_fraction pipe ctx > 0.1);
  (* load-store formulas use succ/pred arithmetic *)
  let ctx = Ast.create_ctx () in
  let lsu = Load_store.formula ctx ~n_ops:6 in
  let has_arith = ref false in
  List.iter
    (fun (a : Ast.formula) ->
      match a.Ast.fnode with Ast.Lt _ -> has_arith := true | _ -> ())
    (Ast.atoms lsu);
  Alcotest.(check bool) "lsu has inequalities" true !has_arith

let test_suite_shape () =
  Alcotest.(check int) "49 benchmarks" 49 (List.length Suite.benchmarks);
  Alcotest.(check int) "39 non-invariant" 39 (List.length Suite.non_invariant);
  Alcotest.(check int) "10 invariant" 10 (List.length Suite.invariant_checking);
  Alcotest.(check int) "16 sample" 16 (List.length Suite.sample16);
  (* the sample covers every family *)
  let families =
    List.sort_uniq compare
      (List.map (fun (b : Suite.benchmark) -> b.Suite.family) Suite.sample16)
  in
  Alcotest.(check int) "sample covers all families" 6 (List.length families);
  (* sizes roughly span the paper's range *)
  let sizes =
    List.map
      (fun (b : Suite.benchmark) ->
        let ctx = Ast.create_ctx () in
        Ast.size (b.Suite.build ctx))
      Suite.benchmarks
  in
  Alcotest.(check bool) "min size small" true (List.fold_left min max_int sizes < 150);
  Alcotest.(check bool) "max size large" true (List.fold_left max 0 sizes > 2000);
  (* names resolve *)
  Alcotest.(check bool) "find" true (Suite.find "pipe.3" <> None);
  Alcotest.(check bool) "find missing" true (Suite.find "nope" = None)

let test_family_names () =
  List.iter
    (fun (f, n) -> Alcotest.(check string) n n (Suite.family_name f))
    [
      (Suite.Pipeline, "pipeline");
      (Suite.Load_store, "load-store");
      (Suite.Ooo_invariant, "ooo-invariant");
      (Suite.Cache, "cache");
      (Suite.Trans_valid, "trans-valid");
      (Suite.Device_driver, "device-driver");
    ]

let () =
  Alcotest.run "workloads"
    [
      ( "generators",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "bug variants differ" `Quick test_bug_differs;
          Alcotest.test_case "sizes grow" `Quick test_sizes_grow;
          Alcotest.test_case "structural signatures" `Quick test_signatures;
        ] );
      ( "suite",
        [
          Alcotest.test_case "shape" `Quick test_suite_shape;
          Alcotest.test_case "family names" `Quick test_family_names;
        ] );
    ]
