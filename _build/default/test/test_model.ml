(* Tests for the term-level transition-system checker (BMC + k-induction). *)

module Ast = Sepsat_suf.Ast
module Ts = Sepsat_model.Transition_system
module Decide = Sepsat.Decide

(* A FIFO pointer pair: enqueue advances the tail, a guarded dequeue
   advances the head; head <= tail is inductive. *)
let fifo ctx ~guarded =
  Ts.define ~ctx ~name:"fifo" ~int_vars:[ "head"; "tail" ] ~bool_vars:[]
    ~init:(fun s -> Ast.eq ctx (Ts.int_var s "head") (Ts.int_var s "tail"))
    ~next:(fun s ->
      let h = Ts.int_var s "head" and t = Ts.int_var s "tail" in
      let do_deq =
        if guarded then
          Ast.and_ ctx (Ts.bool_input s "deq") (Ast.lt ctx h t)
        else Ts.bool_input s "deq"
      in
      [
        ("tail",
         `I (Ast.tite ctx (Ts.bool_input s "enq") (Ast.plus ctx t 1) t));
        ("head", `I (Ast.tite ctx do_deq (Ast.plus ctx h 1) h));
      ])
    ()

let ordered ctx s = Ast.le ctx (Ts.int_var s "head") (Ts.int_var s "tail")

let test_fifo_bmc () =
  let ctx = Ast.create_ctx () in
  let sys = fifo ctx ~guarded:true in
  match Ts.bmc sys ~property:(ordered ctx) ~depth:6 with
  | Ts.Proved -> ()
  | Ts.Counterexample _ | Ts.Inconclusive _ ->
    Alcotest.fail "guarded fifo should pass bounded checking"

let test_fifo_induction () =
  let ctx = Ast.create_ctx () in
  let sys = fifo ctx ~guarded:true in
  match Ts.induction sys ~property:(ordered ctx) with
  | Ts.Proved -> ()
  | Ts.Counterexample _ | Ts.Inconclusive _ ->
    Alcotest.fail "head <= tail should be inductive"

let test_fifo_bug_trace () =
  let ctx = Ast.create_ctx () in
  let sys = fifo ctx ~guarded:false in
  match Ts.bmc sys ~property:(ordered ctx) ~depth:4 with
  | Ts.Counterexample trace ->
    Alcotest.(check int) "fails at the first step" 1 trace.Ts.depth;
    Alcotest.(check int) "trace covers both steps" 2
      (List.length trace.Ts.states);
    (* the decoded trace must actually violate the property at the end *)
    let last = List.assoc trace.Ts.depth trace.Ts.states in
    let head = int_of_string (List.assoc "head" last) in
    let tail = int_of_string (List.assoc "tail" last) in
    Alcotest.(check bool) "violation is real" true (head > tail)
  | Ts.Proved | Ts.Inconclusive _ ->
    Alcotest.fail "the unguarded dequeue bug must be found"

(* A mutual-exclusion token: the token sits with exactly one of two agents;
   a swap exchanges it. Needs k = 1 induction with a Boolean state. *)
let test_token_protocol () =
  let ctx = Ast.create_ctx () in
  let sys =
    Ts.define ~ctx ~name:"token" ~int_vars:[] ~bool_vars:[ "t0"; "t1" ]
      ~init:(fun s ->
        Ast.and_ ctx (Ts.bool_var s "t0") (Ast.not_ ctx (Ts.bool_var s "t1")))
      ~next:(fun s ->
        let swap = Ts.bool_input s "swap" in
        [
          ("t0", `B (Ast.fite ctx swap (Ts.bool_var s "t1") (Ts.bool_var s "t0")));
          ("t1", `B (Ast.fite ctx swap (Ts.bool_var s "t0") (Ts.bool_var s "t1")));
        ])
      ()
  in
  let exclusive s =
    Ast.not_ ctx (Ast.iff ctx (Ts.bool_var s "t0") (Ts.bool_var s "t1"))
  in
  (match Ts.induction sys ~property:exclusive with
  | Ts.Proved -> ()
  | Ts.Counterexample _ | Ts.Inconclusive _ ->
    Alcotest.fail "token exclusivity should be inductive");
  (* and a too-strong property is refuted at depth 1 *)
  let always_t0 s = Ts.bool_var s "t0" in
  match Ts.bmc sys ~property:always_t0 ~depth:3 with
  | Ts.Counterexample trace ->
    Alcotest.(check bool) "found after a swap" true (trace.Ts.depth >= 1)
  | Ts.Proved | Ts.Inconclusive _ -> Alcotest.fail "t0 is not invariant"

(* A counter that skips: +2 each step from 0; "counter != 1" is true but not
   1-inductive — k-induction with k = 2 also fails here (the step case can
   start anywhere), exercising the Inconclusive path. *)
let test_induction_incompleteness () =
  let ctx = Ast.create_ctx () in
  let zero = Ast.const ctx "zero" in
  let sys =
    Ts.define ~ctx ~name:"skip" ~int_vars:[ "c" ] ~bool_vars:[]
      ~init:(fun s -> Ast.eq ctx (Ts.int_var s "c") zero)
      ~next:(fun s -> [ ("c", `I (Ast.plus ctx (Ts.int_var s "c") 2)) ])
      ()
  in
  let not_one s =
    Ast.not_ ctx (Ast.eq ctx (Ts.int_var s "c") (Ast.plus ctx zero 1))
  in
  (match Ts.induction sys ~property:not_one with
  | Ts.Inconclusive _ -> ()
  | Ts.Proved -> Alcotest.fail "c != zero+1 is not 1-inductive"
  | Ts.Counterexample _ -> Alcotest.fail "no real counterexample exists");
  (* bounded checking confirms it up to depth 5 *)
  match Ts.bmc sys ~property:not_one ~depth:5 with
  | Ts.Proved -> ()
  | Ts.Counterexample _ | Ts.Inconclusive _ ->
    Alcotest.fail "bmc should not find a counterexample"

let test_validation_errors () =
  let ctx = Ast.create_ctx () in
  Alcotest.(check bool) "duplicate sorts rejected" true
    (match
       Ts.define ~ctx ~int_vars:[ "x" ] ~bool_vars:[ "x" ]
         ~init:(fun _ -> Ast.tru ctx)
         ~next:(fun _ -> [])
         ()
     with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let sys =
    Ts.define ~ctx ~int_vars:[ "x" ] ~bool_vars:[]
      ~init:(fun _ -> Ast.tru ctx)
      ~next:(fun s -> [ ("y", `I (Ts.int_var s "x")) ])
      ()
  in
  Alcotest.(check bool) "undeclared assignment rejected" true
    (match Ts.bmc sys ~property:(fun _ -> Ast.tru ctx) ~depth:1 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let () =
  Alcotest.run "model"
    [
      ( "transition_system",
        [
          Alcotest.test_case "fifo bmc" `Quick test_fifo_bmc;
          Alcotest.test_case "fifo induction" `Quick test_fifo_induction;
          Alcotest.test_case "fifo bug trace" `Quick test_fifo_bug_trace;
          Alcotest.test_case "token protocol" `Quick test_token_protocol;
          Alcotest.test_case "induction incompleteness" `Quick
            test_induction_incompleteness;
          Alcotest.test_case "validation errors" `Quick test_validation_errors;
        ] );
    ]
