test/test_suf.ml: Alcotest List Printf QCheck2 QCheck_alcotest Sepsat Sepsat_sep Sepsat_suf Sepsat_util Sepsat_workloads String
