test/test_baselines.ml: Alcotest List Sepsat_baselines Sepsat_sep Sepsat_suf Sepsat_util Sepsat_workloads
