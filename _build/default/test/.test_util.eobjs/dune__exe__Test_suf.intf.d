test/test_suf.mli:
