test/test_prop.ml: Alcotest Array List QCheck2 QCheck_alcotest Sepsat_prop Sepsat_sat
