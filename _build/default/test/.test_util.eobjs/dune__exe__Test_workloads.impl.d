test/test_workloads.ml: Alcotest List Sepsat_suf Sepsat_util Sepsat_workloads
