test/test_sat.ml: Alcotest Array Format List Printf QCheck2 QCheck_alcotest Sepsat_sat Sepsat_util String
