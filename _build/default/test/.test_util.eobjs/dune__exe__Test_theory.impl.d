test/test_theory.ml: Alcotest List QCheck2 QCheck_alcotest Sepsat_theory
