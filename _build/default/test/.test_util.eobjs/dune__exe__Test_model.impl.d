test/test_model.ml: Alcotest List Sepsat Sepsat_model Sepsat_suf
