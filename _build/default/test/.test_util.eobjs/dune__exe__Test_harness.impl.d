test/test_harness.ml: Alcotest Array Format List QCheck2 QCheck_alcotest Sepsat Sepsat_harness Sepsat_sep Sepsat_workloads String
