test/test_sep.ml: Alcotest Array Format List QCheck2 QCheck_alcotest Sepsat_sep Sepsat_suf Sepsat_util Sepsat_workloads
