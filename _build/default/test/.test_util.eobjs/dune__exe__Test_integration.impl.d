test/test_integration.ml: Alcotest Format List QCheck2 QCheck_alcotest Sepsat Sepsat_sep Sepsat_suf Sepsat_util Sepsat_workloads String
