test/test_sep.mli:
