test/test_encode.ml: Alcotest Array Hashtbl List Printf QCheck2 QCheck_alcotest Sepsat_encode Sepsat_prop Sepsat_sat Sepsat_sep Sepsat_suf Sepsat_theory Sepsat_util
