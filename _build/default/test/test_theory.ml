(* Tests for the difference-constraint solver: batch Bellman-Ford checks,
   explanations, models, and the incremental Cotton-Maler path. *)

module Diff_solver = Sepsat_theory.Diff_solver

let test_feasible () =
  let ds : int Diff_solver.t = Diff_solver.create () in
  let x = Diff_solver.node ds "x"
  and y = Diff_solver.node ds "y"
  and z = Diff_solver.node ds "z" in
  (* x - y <= -1, y - z <= -1 : x < y < z *)
  Diff_solver.assert_le ds ~x ~y ~c:(-1) ~tag:1;
  Diff_solver.assert_le ds ~x:y ~y:z ~c:(-1) ~tag:2;
  Alcotest.(check bool) "feasible" true (Diff_solver.infeasibility ds = None);
  let model = Diff_solver.model ds in
  let v n = List.assoc n model in
  Alcotest.(check bool) "x<y" true (v "x" < v "y");
  Alcotest.(check bool) "y<z" true (v "y" < v "z");
  Alcotest.(check bool) "non-negative" true (List.for_all (fun (_, v) -> v >= 0) model)

let test_infeasible_cycle () =
  let ds : int Diff_solver.t = Diff_solver.create () in
  let x = Diff_solver.node ds "x" and y = Diff_solver.node ds "y" in
  Diff_solver.assert_le ds ~x ~y ~c:(-1) ~tag:1;
  Diff_solver.assert_le ds ~x:y ~y:x ~c:0 ~tag:2;
  match Diff_solver.infeasibility ds with
  | None -> Alcotest.fail "should be infeasible"
  | Some tags ->
    Alcotest.(check (list int)) "explanation is the cycle" [ 1; 2 ]
      (List.sort compare tags)

let test_push_pop () =
  let ds : int Diff_solver.t = Diff_solver.create () in
  let x = Diff_solver.node ds "x" and y = Diff_solver.node ds "y" in
  Diff_solver.assert_le ds ~x ~y ~c:(-1) ~tag:1;
  Diff_solver.push ds;
  Diff_solver.assert_le ds ~x:y ~y:x ~c:0 ~tag:2;
  Alcotest.(check bool) "inconsistent inside" true
    (Diff_solver.infeasibility ds <> None);
  Diff_solver.pop ds;
  Alcotest.(check bool) "consistent after pop" true
    (Diff_solver.infeasibility ds = None)

let test_incremental () =
  let ds : int Diff_solver.t = Diff_solver.create () in
  let x = Diff_solver.node ds "x"
  and y = Diff_solver.node ds "y"
  and z = Diff_solver.node ds "z" in
  Alcotest.(check bool) "ok 1" true
    (Diff_solver.assert_and_check ds ~x ~y ~c:(-2) ~tag:1);
  Alcotest.(check bool) "ok 2" true
    (Diff_solver.assert_and_check ds ~x:y ~y:z ~c:(-3) ~tag:2);
  Diff_solver.push ds;
  Alcotest.(check bool) "closing cycle rejected" false
    (Diff_solver.assert_and_check ds ~x:z ~y:x ~c:4 ~tag:3);
  Diff_solver.pop ds;
  Alcotest.(check bool) "loose completion accepted" true
    (Diff_solver.assert_and_check ds ~x:z ~y:x ~c:6 ~tag:4);
  Alcotest.(check bool) "batch agrees" true (Diff_solver.infeasibility ds = None)

(* Property: the incremental interface agrees with the batch Bellman-Ford
   check under a random constraint sequence with pushes and pops. *)
let prop_incremental_vs_batch =
  let gen =
    QCheck2.Gen.(
      list_size (int_bound 40)
        (oneof
           [
             map3
               (fun a b c -> `Assert (a mod 6, b mod 6, c - 4))
               small_int small_int (int_bound 8);
             pure `Push;
             pure `Pop;
           ]))
  in
  QCheck2.Test.make ~name:"incremental vs batch" ~count:300 gen (fun ops ->
      let ds : int Diff_solver.t = Diff_solver.create () in
      let batch : (int * int * int) list ref = ref [] in
      let stack = ref [] in
      let depth = ref 0 in
      let consistent = ref true in
      let ok = ref true in
      List.iter
        (fun op ->
          if !consistent then
            match op with
            | `Push ->
              Diff_solver.push ds;
              stack := !batch :: !stack;
              incr depth
            | `Pop ->
              if !depth > 0 then begin
                Diff_solver.pop ds;
                (match !stack with
                | s :: rest ->
                  batch := s;
                  stack := rest
                | [] -> assert false);
                decr depth
              end
            | `Assert (a, b, c) ->
              if a <> b then begin
                let x = Diff_solver.node ds (string_of_int a) in
                let y = Diff_solver.node ds (string_of_int b) in
                let inc = Diff_solver.assert_and_check ds ~x ~y ~c ~tag:0 in
                batch := (a, b, c) :: !batch;
                (* reference check with a fresh batch solver *)
                let ref_ds : int Diff_solver.t = Diff_solver.create () in
                List.iter
                  (fun (a, b, c) ->
                    let x = Diff_solver.node ref_ds (string_of_int a) in
                    let y = Diff_solver.node ref_ds (string_of_int b) in
                    Diff_solver.assert_le ref_ds ~x ~y ~c ~tag:0)
                  !batch;
                let batch_ok = Diff_solver.infeasibility ref_ds = None in
                if inc <> batch_ok then ok := false;
                if not inc then consistent := false
              end)
        ops;
      !ok)

(* Property: on feasible systems the model satisfies every constraint; on
   infeasible ones the explanation is a genuine negative cycle. *)
let prop_model_and_explanation =
  let gen =
    QCheck2.Gen.(
      list_size (int_bound 25)
        (map3 (fun a b c -> (a mod 5, b mod 5, c - 3)) small_int small_int
           (int_bound 6)))
  in
  QCheck2.Test.make ~name:"model / explanation soundness" ~count:300 gen
    (fun constraints ->
      let constraints = List.filter (fun (a, b, _) -> a <> b) constraints in
      let ds : (int * int * int) Diff_solver.t = Diff_solver.create () in
      List.iter
        (fun (a, b, c) ->
          let x = Diff_solver.node ds (string_of_int a) in
          let y = Diff_solver.node ds (string_of_int b) in
          Diff_solver.assert_le ds ~x ~y ~c ~tag:(a, b, c))
        constraints;
      match Diff_solver.infeasibility ds with
      | None ->
        let model = Diff_solver.model ds in
        let v n = List.assoc (string_of_int n) model in
        List.for_all (fun (a, b, c) -> v a - v b <= c) constraints
      | Some cycle ->
        (* the tagged constraints must form a cycle of negative weight *)
        let weight = List.fold_left (fun acc (_, _, c) -> acc + c) 0 cycle in
        let followable =
          (* each constraint x - y <= c is an edge y -> x; a cycle means the
             multiset of sources equals the multiset of destinations *)
          let srcs = List.sort compare (List.map (fun (_, b, _) -> b) cycle) in
          let dsts = List.sort compare (List.map (fun (a, _, _) -> a) cycle) in
          srcs = dsts
        in
        weight < 0 && followable)

let () =
  Alcotest.run "theory"
    [
      ( "diff_solver",
        [
          Alcotest.test_case "feasible" `Quick test_feasible;
          Alcotest.test_case "infeasible cycle" `Quick test_infeasible_cycle;
          Alcotest.test_case "push/pop" `Quick test_push_pop;
          Alcotest.test_case "incremental" `Quick test_incremental;
          QCheck_alcotest.to_alcotest prop_incremental_vs_batch;
          QCheck_alcotest.to_alcotest prop_model_and_explanation;
        ] );
    ]
