(* Tests for the encoders: bit-vector circuits, EIJ transitivity generation,
   and hybrid encoding invariants. End-to-end correctness is covered by
   test_integration. *)

module F = Sepsat_prop.Formula
module Bitvec = Sepsat_encode.Bitvec
module Eij = Sepsat_encode.Eij
module Hybrid = Sepsat_encode.Hybrid
module Bound = Sepsat_sep.Bound
module Ground = Sepsat_sep.Ground
module Ast = Sepsat_suf.Ast
module Parse = Sepsat_suf.Parse
module Elim = Sepsat_suf.Elim
module Solver = Sepsat_sat.Solver
module Tseitin = Sepsat_prop.Tseitin
module Sset = Sepsat_util.Sset

let test_width_for () =
  Alcotest.(check int) "0" 1 (Bitvec.width_for 0);
  Alcotest.(check int) "1" 1 (Bitvec.width_for 1);
  Alcotest.(check int) "2" 2 (Bitvec.width_for 2);
  Alcotest.(check int) "3" 2 (Bitvec.width_for 3);
  Alcotest.(check int) "4" 3 (Bitvec.width_for 4);
  Alcotest.(check int) "255" 8 (Bitvec.width_for 255);
  Alcotest.(check int) "256" 9 (Bitvec.width_for 256)

let test_of_int_decode () =
  let ctx = F.create_ctx () in
  List.iter
    (fun n ->
      let bv = Bitvec.of_int ctx ~width:8 n in
      Alcotest.(check int) (string_of_int n) n
        (Bitvec.decode (fun _ -> false) bv))
    [ 0; 1; 5; 100; 255 ];
  Alcotest.(check bool) "too wide" true
    (match Bitvec.of_int ctx ~width:3 8 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "negative" true
    (match Bitvec.of_int ctx ~width:3 (-1) with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* Constant circuits evaluate to the right values for every (a, k) pair. *)
let prop_bitvec_circuits =
  QCheck2.Test.make ~name:"bitvec circuits vs integers" ~count:500
    QCheck2.Gen.(triple (int_bound 63) (int_bound 63) (int_range (-40) 40))
    (fun (a, b, k) ->
      let ctx = F.create_ctx () in
      let width = 7 in
      let bva = Bitvec.of_int ctx ~width a in
      let bvb = Bitvec.of_int ctx ~width b in
      let e = fun _ -> false in
      let added = Bitvec.decode e (Bitvec.add_int ctx bva k) in
      let expect_add = (a + k) land 127 in
      added = expect_add
      && F.eval e (Bitvec.equal ctx bva bvb) = (a = b)
      && F.eval e (Bitvec.ult ctx bva bvb) = (a < b)
      && F.eval e (Bitvec.ule ctx bva bvb) = (a <= b))

(* With symbolic inputs, the circuits agree with integers under random
   assignments. *)
let prop_bitvec_symbolic =
  QCheck2.Test.make ~name:"symbolic bitvec vs integers" ~count:300
    QCheck2.Gen.(triple (int_bound 255) (int_bound 255) (int_range (-100) 100))
    (fun (a, b, k) ->
      let ctx = F.create_ctx () in
      let width = 8 in
      let bva = Bitvec.fresh ctx ~width in
      let bvb = Bitvec.fresh ctx ~width in
      let assign =
        let values = Hashtbl.create 16 in
        Array.iteri
          (fun i bit -> Hashtbl.add values (F.var_index bit) (a lsr i land 1 = 1))
          bva;
        Array.iteri
          (fun i bit -> Hashtbl.add values (F.var_index bit) (b lsr i land 1 = 1))
          bvb;
        fun i -> try Hashtbl.find values i with Not_found -> false
      in
      Bitvec.decode assign bva = a
      && Bitvec.decode assign (Bitvec.add_int ctx bva k) = (a + k) land 255
      && F.eval assign (Bitvec.equal ctx bva bvb) = (a = b)
      && F.eval assign (Bitvec.ult ctx bva bvb) = (a < b)
      && F.eval assign (Bitvec.mux ctx (Bitvec.ult ctx bva bvb) bva bvb
                        |> Bitvec.equal ctx (Bitvec.of_int ctx ~width (min a b)))
         = true)

(* EIJ variable canonicalization: a bound and its flip share a variable. *)
let test_eij_sharing () =
  let ctx = F.create_ctx () in
  let eij = Eij.create ctx in
  let v1 = Eij.encode_view eij (Bound.view ~x:"a" ~y:"b" ~c:2) in
  let v2 = Eij.encode_view eij (Bound.view ~x:"b" ~y:"a" ~c:(-3)) in
  (* b - a <= -3  <=>  not (a - b <= 2) *)
  Alcotest.(check bool) "negation shared" true (v2 == F.not_ ctx v1);
  Alcotest.(check int) "one predicate" 1 (Eij.num_predicates eij)

(* F_trans characterizes realizability exactly on a handcrafted triangle. *)
let test_eij_triangle () =
  let pctx = F.create_ctx () in
  let eij = Eij.create pctx in
  let is_p _ = false in
  let exy = Eij.encode_lt eij ~is_p (Ground.make "x" 0) (Ground.make "y" 0) in
  let eyz = Eij.encode_lt eij ~is_p (Ground.make "y" 0) (Ground.make "z" 0) in
  let ezx = Eij.encode_lt eij ~is_p (Ground.make "z" 0) (Ground.make "x" 0) in
  let f_trans = Eij.trans_constraints eij in
  (* x<y, y<z, z<x is a negative cycle: F_trans ∧ exy ∧ eyz ∧ ezx unsat *)
  let solver = Solver.create () in
  let ts = Tseitin.create solver in
  Tseitin.assert_root ts
    (F.and_list pctx [ f_trans; exy; eyz; ezx ]);
  Alcotest.(check bool) "cycle blocked" true (Solver.solve solver = Solver.Unsat);
  (* but x<y, y<z, x<z is realizable *)
  let solver2 = Solver.create () in
  let ts2 = Tseitin.create solver2 in
  Tseitin.assert_root ts2
    (F.and_list pctx [ f_trans; exy; eyz; F.not_ pctx ezx ]);
  Alcotest.(check bool) "chain allowed" true (Solver.solve solver2 = Solver.Sat)

let test_eij_budget () =
  let pctx = F.create_ctx () in
  let eij = Eij.create ~budget:3 pctx in
  let is_p _ = false in
  (* enough predicates over one component to exceed a budget of 3 *)
  let names = [ "a"; "b"; "c"; "d"; "e" ] in
  List.iteri
    (fun i x ->
      List.iteri
        (fun j y ->
          if i < j then
            ignore (Eij.encode_lt eij ~is_p (Ground.make x 0) (Ground.make y 0)))
        names)
    names;
  Alcotest.(check bool) "budget blowup" true
    (match Eij.trans_constraints eij with
    | exception Eij.Translation_blowup -> true
    | _ -> false)

(* Exactness of F_trans: for random bound sets, an assignment of the
   predicate variables satisfies F_trans iff the induced difference
   constraints are feasible. This exercises the vertex elimination together
   with its weight-clamping and edge-dropping reductions. *)
let prop_eij_exact =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 1 7)
        (triple (int_bound 3) (int_bound 3) (int_range (-3) 3)))
  in
  QCheck2.Test.make ~name:"F_trans characterizes realizability" ~count:200 gen
    (fun bounds_spec ->
      let bounds_spec =
        List.filter (fun (a, b, _) -> a <> b) bounds_spec
        |> List.sort_uniq compare
      in
      if bounds_spec = [] then true
      else begin
        let pctx = F.create_ctx () in
        let eij = Eij.create pctx in
        let vars =
          List.map
            (fun (a, b, c) ->
              let v =
                Eij.encode_view eij
                  (Bound.view
                     ~x:(Printf.sprintf "n%d" a)
                     ~y:(Printf.sprintf "n%d" b)
                     ~c)
              in
              ((a, b, c), v))
            bounds_spec
        in
        let f_trans = Eij.trans_constraints eij in
        (* every polarity pattern of the bound variables *)
        let n = List.length vars in
        let ok = ref true in
        for mask = 0 to (1 lsl n) - 1 do
          let lits =
            List.mapi
              (fun i (_, v) ->
                if mask lsr i land 1 = 1 then v else F.not_ pctx v)
              vars
          in
          let solver = Solver.create () in
          let ts = Tseitin.create solver in
          Tseitin.assert_root ts (F.and_list pctx (f_trans :: lits));
          let sat = Solver.solve solver = Solver.Sat in
          (* reference feasibility via Bellman-Ford *)
          let ds : unit Sepsat_theory.Diff_solver.t =
            Sepsat_theory.Diff_solver.create ()
          in
          List.iteri
            (fun i ((a, b, c), _) ->
              let x =
                Sepsat_theory.Diff_solver.node ds (Printf.sprintf "n%d" a)
              in
              let y =
                Sepsat_theory.Diff_solver.node ds (Printf.sprintf "n%d" b)
              in
              if mask lsr i land 1 = 1 then
                Sepsat_theory.Diff_solver.assert_le ds ~x ~y ~c ~tag:()
              else
                Sepsat_theory.Diff_solver.assert_le ds ~x:y ~y:x ~c:(-c - 1)
                  ~tag:())
            vars;
          let feasible = Sepsat_theory.Diff_solver.infeasibility ds = None in
          if sat <> feasible then ok := false
        done;
        !ok
      end)

let encode_text ?(config = Hybrid.default) text =
  let ctx = Ast.create_ctx () in
  let f = Parse.formula ctx text in
  let elim = Elim.eliminate ctx f in
  Hybrid.encode ~config ctx ~p_consts:elim.Elim.p_consts elim.Elim.formula

let test_hybrid_stats () =
  let enc = encode_text "(and (< x y) (= (f a) (f b)))" in
  let s = enc.Hybrid.stats in
  Alcotest.(check bool) "classes > 0" true (s.Hybrid.n_classes > 0);
  Alcotest.(check int) "all eij at default" 0 s.Hybrid.sd_classes;
  let enc2 = encode_text ~config:Hybrid.sd_only "(and (< x y) (= (f a) (f b)))" in
  Alcotest.(check int) "all sd" 0 enc2.Hybrid.stats.Hybrid.eij_classes

let test_hybrid_pure_p_atoms () =
  (* With an explicit p-classification, an equality between two distinct
     p-constants folds to false (the maximally diverse interpretation of
     paper 4 step 5), so its negation encodes as valid. *)
  let ctx = Ast.create_ctx () in
  let f = Parse.formula ctx "(not (= p q))" in
  let enc =
    Hybrid.encode ctx ~p_consts:(Sset.of_list [ "p"; "q" ]) f
  in
  Alcotest.(check bool) "statically true" true
    (enc.Hybrid.f_bool == F.tru enc.Hybrid.prop_ctx);
  (* same p-constant with equal offsets folds to true *)
  let ctx2 = Ast.create_ctx () in
  let g = Parse.formula ctx2 "(= (+ p 2) (succ (succ p)))" in
  let enc2 = Hybrid.encode ctx2 ~p_consts:(Sset.of_list [ "p" ]) g in
  Alcotest.(check bool) "same ground true" true
    (enc2.Hybrid.f_bool == F.tru enc2.Hybrid.prop_ctx)

let () =
  Alcotest.run "encode"
    [
      ( "bitvec",
        [
          Alcotest.test_case "width_for" `Quick test_width_for;
          Alcotest.test_case "of_int/decode" `Quick test_of_int_decode;
          QCheck_alcotest.to_alcotest prop_bitvec_circuits;
          QCheck_alcotest.to_alcotest prop_bitvec_symbolic;
        ] );
      ( "eij",
        [
          Alcotest.test_case "variable sharing" `Quick test_eij_sharing;
          Alcotest.test_case "triangle realizability" `Quick test_eij_triangle;
          Alcotest.test_case "budget" `Quick test_eij_budget;
          QCheck_alcotest.to_alcotest prop_eij_exact;
        ] );
      ( "hybrid",
        [
          Alcotest.test_case "stats" `Quick test_hybrid_stats;
          Alcotest.test_case "pure-p atoms" `Quick test_hybrid_pure_p_atoms;
        ] );
    ]
