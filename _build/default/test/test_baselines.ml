(* Tests for the SVC-style and lazy (CVC-style) baseline procedures. *)

module Ast = Sepsat_suf.Ast
module Parse = Sepsat_suf.Parse
module Elim = Sepsat_suf.Elim
module Svc = Sepsat_baselines.Svc
module Lazy_smt = Sepsat_baselines.Lazy_smt
module Verdict = Sepsat_sep.Verdict
module Brute = Sepsat_sep.Brute
module Interp = Sepsat_suf.Interp
module Deadline = Sepsat_util.Deadline

let sep_formula ctx text =
  (Elim.eliminate ctx (Parse.formula ctx text)).Elim.formula

let cases_valid =
  [
    "(= x x)";
    "(< x (succ x))";
    "(or (< x y) (>= x y))";
    "(=> (and (< x y) (< y z)) (< x z))";
    "(=> (and (= a b) (= b c)) (= a c))";
    "(=> (= a b) (= (f a) (f b)))";
    "(not (and (>= x y) (and (>= y z) (>= z (succ x)))))";
    "(or b (not b))";
    "(=> (and (P u) (= u v)) (P v))";
  ]

let cases_invalid =
  [
    "(= x y)";
    "(< x y)";
    "(=> (= (f a) (f b)) (= a b))";
    "(=> (< x z) (< x y))";
    "(and b (not c))";
    "(= (+ x 1) (+ y 1))";
  ]

let check_procedure name decide =
  List.iter
    (fun text ->
      let ctx = Ast.create_ctx () in
      let verdict, _ = decide ctx (sep_formula ctx text) in
      match verdict with
      | Verdict.Valid -> ()
      | Verdict.Invalid _ | Verdict.Unknown _ ->
        Alcotest.failf "%s: %s should be valid" name text)
    cases_valid;
  List.iter
    (fun text ->
      let ctx = Ast.create_ctx () in
      let f = sep_formula ctx text in
      let verdict, _ = decide ctx f in
      match verdict with
      | Verdict.Invalid assignment ->
        (* countermodel replay on the decided formula instance *)
        let i = Brute.interp_of_assignment assignment in
        if Interp.eval i f then
          Alcotest.failf "%s: countermodel of %s does not falsify" name text
      | Verdict.Valid | Verdict.Unknown _ ->
        Alcotest.failf "%s: %s should be invalid" name text)
    cases_invalid

let test_svc () = check_procedure "svc" (fun ctx f -> Svc.decide ctx f)

let test_lazy () = check_procedure "lazy" (fun ctx f -> Lazy_smt.decide ctx f)

let test_svc_stats () =
  let ctx = Ast.create_ctx () in
  let f = sep_formula ctx "(=> (and (< x y) (< y z)) (< x z))" in
  let _, stats = Svc.decide ctx f in
  Alcotest.(check bool) "splits counted" true (stats.Svc.splits > 0);
  Alcotest.(check bool) "theory checks counted" true (stats.Svc.theory_checks > 0)

let test_lazy_iterations () =
  (* transitivity needs at least one refinement round here *)
  let ctx = Ast.create_ctx () in
  let f = sep_formula ctx "(=> (and (< x y) (< y z)) (< x z))" in
  let verdict, stats = Lazy_smt.decide ctx f in
  Alcotest.(check bool) "valid" true (verdict = Verdict.Valid);
  Alcotest.(check bool) "iterated" true (stats.Lazy_smt.iterations >= 2);
  Alcotest.(check bool) "conflict clauses added" true
    (stats.Lazy_smt.conflict_clauses >= 1)

let test_svc_timeout () =
  let ctx = Ast.create_ctx () in
  let f =
    (Elim.eliminate ctx
       (Sepsat_workloads.Pipeline.formula ctx ~n_instructions:10 ~seed:1))
      .Elim.formula
  in
  match Svc.decide ~deadline:(Deadline.after 0.2) ctx f with
  | Verdict.Unknown _, _ -> ()
  | (Verdict.Valid | Verdict.Invalid _), _ ->
    (* finishing within the budget is fine too, but unexpected at size 10 *)
    Alcotest.fail "expected an SVC timeout on a large disjunctive formula"

let () =
  Alcotest.run "baselines"
    [
      ( "svc",
        [
          Alcotest.test_case "validity" `Quick test_svc;
          Alcotest.test_case "stats" `Quick test_svc_stats;
          Alcotest.test_case "timeout" `Quick test_svc_timeout;
        ] );
      ( "lazy",
        [
          Alcotest.test_case "validity" `Quick test_lazy;
          Alcotest.test_case "refinement iterations" `Quick test_lazy_iterations;
        ] );
    ]
