(* Tests for the separation-logic layer: normalization, ground maps,
   constant classes, bounds, and the brute-force oracle. *)

module Ast = Sepsat_suf.Ast
module Parse = Sepsat_suf.Parse
module Interp = Sepsat_suf.Interp
module Elim = Sepsat_suf.Elim
module Normal = Sepsat_sep.Normal
module Ground = Sepsat_sep.Ground
module Ground_map = Sepsat_sep.Ground_map
module Classes = Sepsat_sep.Classes
module Bound = Sepsat_sep.Bound
module Brute = Sepsat_sep.Brute
module Sset = Sepsat_util.Sset
module Random_formula = Sepsat_workloads.Random_formula

(* Random application-free formulas: eliminate a random SUF formula. *)
let random_sep_formula ctx ~seed =
  let f = Random_formula.generate Random_formula.default ctx ~seed in
  (Elim.eliminate ctx f).Elim.formula

let test_ground () =
  let ctx = Ast.create_ctx () in
  let g = Ground.make "x" 3 in
  Alcotest.(check string) "pp" "x+3" (Format.asprintf "%a" Ground.pp g);
  Alcotest.(check string) "pp neg" "x-2"
    (Format.asprintf "%a" Ground.pp (Ground.make "x" (-2)));
  let t = Ground.to_term ctx g in
  Alcotest.(check bool) "to_term/ground_of_term" true
    (Ground.equal g (Normal.ground_of_term t));
  Alcotest.(check bool) "compare" true (Ground.compare g (Ground.make "x" 4) < 0)

let test_normalize_shapes () =
  let ctx = Ast.create_ctx () in
  let f = Parse.formula ctx "(= (succ (ite b x y)) (pred (succ z)))" in
  Alcotest.(check bool) "not yet normal" false (Normal.is_normal f);
  let g = Normal.normalize ctx f in
  Alcotest.(check bool) "normal" true (Normal.is_normal g);
  (* succ pushed into the ITE branches; pred(succ z) cancelled *)
  let expected =
    Parse.formula ctx "(= (ite b (succ x) (succ y)) z)"
  in
  (* the parser canonicalizes equality operand order the same way *)
  Alcotest.(check bool) "expected shape" true (expected == g)

let prop_normalize_semantics =
  QCheck2.Test.make ~name:"normalization preserves evaluation" ~count:200
    QCheck2.Gen.(pair (int_bound 100000) (int_bound 1000))
    (fun (seed, iseed) ->
      let ctx = Ast.create_ctx () in
      let f = random_sep_formula ctx ~seed in
      let g = Normal.normalize ctx f in
      Normal.is_normal g
      && List.for_all
           (fun k ->
             let i = Interp.random ~seed:(iseed + k) ~range:5 in
             Interp.eval i f = Interp.eval i g)
           [ 0; 1; 2; 3; 4 ])

let all_terms_of_atoms formula =
  List.concat_map
    (fun (a : Ast.formula) ->
      match a.Ast.fnode with
      | Ast.Eq (t1, t2) | Ast.Lt (t1, t2) -> [ t1; t2 ]
      | _ -> [])
    (Ast.atoms formula)

(* Ground_map: the conditions for a term are exhaustive, mutually exclusive,
   and select the ground the term actually evaluates to. *)
let prop_ground_map =
  QCheck2.Test.make ~name:"ground map selects the evaluated ground" ~count:200
    QCheck2.Gen.(pair (int_bound 100000) (int_bound 1000))
    (fun (seed, iseed) ->
      let ctx = Ast.create_ctx () in
      let f = Normal.normalize ctx (random_sep_formula ctx ~seed) in
      let gm = Ground_map.create ctx in
      let interp = Interp.random ~seed:iseed ~range:5 in
      List.for_all
        (fun t ->
          let entries = Ground_map.of_term gm t in
          let active =
            List.filter (fun (_, c) -> Interp.eval interp c) entries
          in
          match active with
          | [ (g, _) ] ->
            Interp.eval_term interp (Ground.to_term ctx g)
            = Interp.eval_term interp t
          | [] | _ :: _ :: _ -> false)
        (all_terms_of_atoms f))

let test_classes_basics () =
  let ctx = Ast.create_ctx () in
  let f =
    Parse.formula ctx
      "(and (< x (+ y 2)) (and (= z w) (= (ite b u (- v 1)) u)))"
  in
  let nf = Normal.normalize ctx f in
  let classes = Classes.build ~p_consts:Sset.empty nf in
  let infos = Classes.classes classes in
  (* {x,y}, {z,w}, {u,v} *)
  Alcotest.(check int) "three classes" 3 (Array.length infos);
  let class_of name =
    match Classes.const_class classes name with
    | Some c -> c.Classes.id
    | None -> -1
  in
  Alcotest.(check bool) "x~y" true (class_of "x" = class_of "y");
  Alcotest.(check bool) "z~w" true (class_of "z" = class_of "w");
  Alcotest.(check bool) "u~v" true (class_of "u" = class_of "v");
  Alcotest.(check bool) "x!~z" true (class_of "x" <> class_of "z");
  (* offsets: y occurs at +2 and 0? y occurs only at +2; x at 0 *)
  Alcotest.(check (pair int int)) "offsets y" (2, 2) (Classes.offsets classes "y");
  Alcotest.(check (pair int int)) "offsets v" (-1, -1) (Classes.offsets classes "v");
  (* range of {x, y}: gap-compression bound (n-1)(W+1)+1 with W = 2 - 0 *)
  (match Classes.const_class classes "x" with
  | Some c ->
    Alcotest.(check int) "range" 4 c.Classes.range;
    Alcotest.(check int) "shift" 0 c.Classes.shift
  | None -> Alcotest.fail "x should be classed");
  (match Classes.const_class classes "v" with
  | Some c -> Alcotest.(check int) "shift clears -1" 1 c.Classes.shift
  | None -> Alcotest.fail "v should be classed")

let test_classes_p_consts () =
  let ctx = Ast.create_ctx () in
  let f = Parse.formula ctx "(= p (ite b q x))" in
  let nf = Normal.normalize ctx f in
  let classes = Classes.build ~p_consts:(Sset.of_list [ "p"; "q" ]) nf in
  Alcotest.(check int) "only x classed" 1 (Array.length (Classes.classes classes));
  Alcotest.(check bool) "p excluded" true (Classes.const_class classes "p" = None);
  Alcotest.(check bool) "is_p" true (Classes.is_p classes "p");
  let atom = List.hd (Ast.atoms nf) in
  (match Classes.atom_class classes atom with
  | Some c -> Alcotest.(check (list string)) "members" [ "x" ] c.Classes.members
  | None -> Alcotest.fail "atom should belong to x's class")

let test_classes_atom_partition () =
  (* every atom's constants live in a single class *)
  let ctx = Ast.create_ctx () in
  let f = Normal.normalize ctx (random_sep_formula ctx ~seed:17) in
  let classes = Classes.build ~p_consts:Sset.empty f in
  List.iter
    (fun atom ->
      match Classes.atom_class classes atom with
      | None -> ()
      | Some c ->
        let members = Sset.of_list c.Classes.members in
        List.iter
          (fun t ->
            List.iter
              (fun (g : Ground.t) ->
                Alcotest.(check bool) "leaf in class" true
                  (Sset.mem g.Ground.base members))
              (Normal.leaves t))
          (match atom.Ast.fnode with
          | Ast.Eq (t1, t2) | Ast.Lt (t1, t2) -> [ t1; t2 ]
          | _ -> []))
    (Ast.atoms f)

let test_bound_views () =
  let v = Bound.view ~x:"a" ~y:"b" ~c:3 in
  Alcotest.(check bool) "kept" false v.Bound.negated;
  Alcotest.(check int) "c" 3 v.Bound.bound.Bound.c;
  let w = Bound.view ~x:"b" ~y:"a" ~c:3 in
  (* b - a <= 3 becomes not (a - b <= -4) *)
  Alcotest.(check bool) "negated" true w.Bound.negated;
  Alcotest.(check int) "flipped c" (-4) w.Bound.bound.Bound.c;
  Alcotest.(check string) "x" "a" w.Bound.bound.Bound.x;
  let wn = Bound.negate w in
  Alcotest.(check bool) "negate" false wn.Bound.negated;
  Alcotest.(check bool) "same constant" true (Bound.equal w.Bound.bound wn.Bound.bound);
  Alcotest.(check bool) "identical rejected" true
    (match Bound.view ~x:"a" ~y:"a" ~c:0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_bound_grounds () =
  let no_p _ = false in
  let is_p n = n = "p" in
  let g name off = Ground.make name off in
  (match Bound.eq_grounds ~is_p:no_p (g "x" 2) (g "x" 2) with
  | `Static true -> ()
  | _ -> Alcotest.fail "same ground");
  (match Bound.eq_grounds ~is_p:no_p (g "x" 2) (g "x" 5) with
  | `Static false -> ()
  | _ -> Alcotest.fail "same base, different offsets");
  (match Bound.eq_grounds ~is_p (g "p" 0) (g "x" 0) with
  | `Static false -> ()
  | _ -> Alcotest.fail "diverse p");
  (match Bound.eq_grounds ~is_p:no_p (g "x" 1) (g "y" 3) with
  | `Conj (v1, v2) ->
    (* x - y <= 2 and y - x <= -2 *)
    Alcotest.(check bool) "v1" true
      (Bound.equal v1.Bound.bound { Bound.x = "x"; y = "y"; c = 2 }
      && not v1.Bound.negated);
    Alcotest.(check bool) "v2" true
      (Bound.equal v2.Bound.bound { Bound.x = "x"; y = "y"; c = 1 }
      && v2.Bound.negated)
  | `Static _ -> Alcotest.fail "expected bounds");
  (match Bound.lt_grounds ~is_p:no_p (g "x" 0) (g "x" 1) with
  | `Static true -> ()
  | _ -> Alcotest.fail "x < x+1");
  (match Bound.lt_grounds ~is_p (g "p" 0) (g "x" 0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "p under inequality must be rejected")

let test_brute () =
  let valid text =
    let ctx = Ast.create_ctx () in
    Brute.valid (Parse.formula ctx text)
  in
  Alcotest.(check bool) "refl" true (valid "(= x x)");
  Alcotest.(check bool) "x=y invalid" false (valid "(= x y)");
  Alcotest.(check bool) "succ mono" true (valid "(< x (succ x))");
  Alcotest.(check bool) "total order" true (valid "(or (< x y) (>= x y))");
  Alcotest.(check bool) "transitivity" true
    (valid "(=> (and (< x y) (< y z)) (< x z))");
  Alcotest.(check bool) "offsets" true
    (valid "(=> (< (+ x 3) y) (< x y))");
  Alcotest.(check bool) "offset too weak" false
    (valid "(=> (< x y) (< (+ x 3) y))");
  Alcotest.(check bool) "bool atoms" true (valid "(or b (not b))");
  (* the paper's own example *)
  Alcotest.(check bool) "paper example" true
    (valid "(not (and (>= x y) (and (>= y z) (>= z (succ x)))))")

let test_brute_countermodel () =
  let ctx = Ast.create_ctx () in
  let f = Parse.formula ctx "(=> (< x y) (< y x))" in
  match Brute.countermodel f with
  | None -> Alcotest.fail "expected a countermodel"
  | Some a ->
    let i = Brute.interp_of_assignment a in
    Alcotest.(check bool) "falsifies" false (Interp.eval i f)

let () =
  Alcotest.run "sep"
    [
      ("ground", [ Alcotest.test_case "basics" `Quick test_ground ]);
      ( "normal",
        [
          Alcotest.test_case "shapes" `Quick test_normalize_shapes;
          QCheck_alcotest.to_alcotest prop_normalize_semantics;
        ] );
      ("ground_map", [ QCheck_alcotest.to_alcotest prop_ground_map ]);
      ( "classes",
        [
          Alcotest.test_case "basics" `Quick test_classes_basics;
          Alcotest.test_case "p constants" `Quick test_classes_p_consts;
          Alcotest.test_case "atom partition" `Quick test_classes_atom_partition;
        ] );
      ( "bound",
        [
          Alcotest.test_case "views" `Quick test_bound_views;
          Alcotest.test_case "ground comparisons" `Quick test_bound_grounds;
        ] );
      ( "brute",
        [
          Alcotest.test_case "validity" `Quick test_brute;
          Alcotest.test_case "countermodel" `Quick test_brute_countermodel;
        ] );
    ]
