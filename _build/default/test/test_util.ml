(* Unit and property tests for the utility substrate: vectors, union-find,
   deadlines. *)

module Vec = Sepsat_util.Vec
module Union_find = Sepsat_util.Union_find
module Deadline = Sepsat_util.Deadline

let test_vec_basics () =
  let v = Vec.create ~dummy:0 in
  Alcotest.(check bool) "empty" true (Vec.is_empty v);
  for i = 0 to 99 do
    Vec.push v i
  done;
  Alcotest.(check int) "size" 100 (Vec.size v);
  Alcotest.(check int) "get" 42 (Vec.get v 42);
  Vec.set v 42 (-1);
  Alcotest.(check int) "set" (-1) (Vec.get v 42);
  Alcotest.(check int) "last" 99 (Vec.last v);
  Alcotest.(check int) "pop" 99 (Vec.pop v);
  Alcotest.(check int) "size after pop" 99 (Vec.size v);
  Vec.shrink v 10;
  Alcotest.(check int) "shrink" 10 (Vec.size v);
  Vec.clear v;
  Alcotest.(check bool) "clear" true (Vec.is_empty v)

let test_vec_bounds () =
  let v = Vec.of_list ~dummy:0 [ 1; 2; 3 ] in
  Alcotest.check_raises "get out of bounds" (Invalid_argument "Vec.get")
    (fun () -> ignore (Vec.get v 3));
  Alcotest.check_raises "set out of bounds" (Invalid_argument "Vec.set")
    (fun () -> Vec.set v (-1) 0);
  let empty = Vec.create ~dummy:0 in
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop: empty")
    (fun () -> ignore (Vec.pop empty))

let test_vec_remove_if () =
  let v = Vec.of_list ~dummy:0 [ 1; 2; 3; 4; 5; 6 ] in
  Vec.remove_if (fun x -> x mod 2 = 0) v;
  Alcotest.(check (list int)) "odds kept in order" [ 1; 3; 5 ] (Vec.to_list v)

let test_vec_grow_to () =
  let v = Vec.of_list ~dummy:0 [ 1 ] in
  Vec.grow_to v 4 9;
  Alcotest.(check (list int)) "grown" [ 1; 9; 9; 9 ] (Vec.to_list v);
  Vec.grow_to v 2 7;
  Alcotest.(check int) "no shrink" 4 (Vec.size v)

let test_vec_sort () =
  let v = Vec.of_list ~dummy:0 [ 3; 1; 2 ] in
  Vec.sort compare v;
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3 ] (Vec.to_list v)

(* Model-based property: a vector behaves like a list under a random
   sequence of pushes and pops. *)
let prop_vec_model =
  QCheck2.Test.make ~name:"vec model" ~count:200
    QCheck2.Gen.(list (oneof [ map (fun n -> `Push n) small_int; pure `Pop ]))
    (fun ops ->
      let v = Vec.create ~dummy:0 in
      let model = ref [] in
      List.iter
        (fun op ->
          match op with
          | `Push n ->
            Vec.push v n;
            model := n :: !model
          | `Pop -> (
            match !model with
            | [] -> ()
            | x :: rest ->
              model := rest;
              if Vec.pop v <> x then failwith "pop mismatch"))
        ops;
      Vec.to_list v = List.rev !model)

let test_union_find () =
  let uf = Union_find.create 6 in
  Union_find.union uf 0 1;
  Union_find.union uf 2 3;
  Union_find.union uf 1 2;
  Alcotest.(check bool) "same 0 3" true (Union_find.same uf 0 3);
  Alcotest.(check bool) "not same 0 4" false (Union_find.same uf 0 4);
  Alcotest.(check int) "classes" 3 (List.length (Union_find.classes uf));
  Alcotest.(check (list (list int))) "class contents"
    [ [ 0; 1; 2; 3 ]; [ 4 ]; [ 5 ] ]
    (Union_find.classes uf)

(* Property: union-find agrees with a naive equivalence closure. *)
let prop_union_find =
  QCheck2.Test.make ~name:"union-find vs naive closure" ~count:200
    QCheck2.Gen.(list (pair (int_bound 9) (int_bound 9)))
    (fun pairs ->
      let n = 10 in
      let uf = Union_find.create n in
      List.iter (fun (a, b) -> Union_find.union uf a b) pairs;
      (* naive: repeated relabeling *)
      let label = Array.init n (fun i -> i) in
      let changed = ref true in
      while !changed do
        changed := false;
        List.iter
          (fun (a, b) ->
            let la = label.(a) and lb = label.(b) in
            if la <> lb then begin
              let lo = min la lb and hi = max la lb in
              Array.iteri (fun i l -> if l = hi then label.(i) <- lo) label;
              changed := true
            end)
          pairs
      done;
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if Union_find.same uf i j <> (label.(i) = label.(j)) then ok := false
        done
      done;
      !ok)

let test_deadline () =
  Alcotest.(check bool) "none never fires" false (Deadline.exceeded Deadline.none);
  let d = Deadline.after 3600. in
  Alcotest.(check bool) "distant not exceeded" false (Deadline.exceeded d);
  Deadline.check d;
  let past = Deadline.after (-1.) in
  Alcotest.(check bool) "past exceeded" true (Deadline.exceeded past);
  Alcotest.check_raises "check raises" Deadline.Timeout (fun () ->
      Deadline.check past)

let () =
  Alcotest.run "util"
    [
      ( "vec",
        [
          Alcotest.test_case "basics" `Quick test_vec_basics;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "remove_if" `Quick test_vec_remove_if;
          Alcotest.test_case "grow_to" `Quick test_vec_grow_to;
          Alcotest.test_case "sort" `Quick test_vec_sort;
          QCheck_alcotest.to_alcotest prop_vec_model;
        ] );
      ( "union_find",
        [
          Alcotest.test_case "basics" `Quick test_union_find;
          QCheck_alcotest.to_alcotest prop_union_find;
        ] );
      ("deadline", [ Alcotest.test_case "basics" `Quick test_deadline ]);
    ]
