(* End-to-end cross-validation: the same validity question answered through
   six independent paths — SD, EIJ, HYBRID, SVC-style tableau, CVC-style
   lazy refinement, and a brute-force small-model oracle — plus countermodel
   replay at both the separation-logic and the first-order level. *)

module Ast = Sepsat_suf.Ast
module Parse = Sepsat_suf.Parse
module Interp = Sepsat_suf.Interp
module Elim = Sepsat_suf.Elim
module Decide = Sepsat.Decide
module Countermodel = Sepsat.Countermodel
module Verdict = Sepsat_sep.Verdict
module Brute = Sepsat_sep.Brute
module Deadline = Sepsat_util.Deadline
module Random_formula = Sepsat_workloads.Random_formula
module Suite = Sepsat_workloads.Suite

let all_methods =
  [
    Decide.Sd;
    Decide.Eij;
    Decide.Hybrid_default;
    Decide.Hybrid_at 0;
    Decide.Svc_baseline;
    Decide.Lazy_baseline;
  ]

let method_name m = Format.asprintf "%a" Decide.pp_method m

(* Interpretation with defaults: constants simplified out of the normalized
   formula may be missing from the assignment; they cannot influence its
   value. *)
let interp_with_defaults (a : Brute.assignment) =
  {
    Interp.func =
      (fun n args ->
        match (args, List.assoc_opt n a.Brute.ints) with
        | [], Some v -> v
        | [], None -> 0
        | _ -> invalid_arg "application in sep formula");
    Interp.pred =
      (fun n args ->
        match (args, List.assoc_opt n a.Brute.bools) with
        | [], Some b -> b
        | [], None -> false
        | _ -> invalid_arg "application in sep formula");
  }

(* Decide [f] with [m]; check countermodels falsify both F_sep and the
   original formula; return the verdict as a bool. *)
let decide_checked m ctx f =
  let r = Decide.decide ~method_:m ~deadline:(Deadline.after 30.) ctx f in
  match r.Decide.verdict with
  | Verdict.Valid -> true
  | Verdict.Invalid assignment ->
    let sep_value =
      Interp.eval (interp_with_defaults assignment) r.Decide.elim.Elim.formula
    in
    if sep_value then
      Alcotest.failf "%s: countermodel does not falsify F_sep of %s"
        (method_name m) (Ast.to_string f);
    let lifted = Countermodel.lift r.Decide.elim assignment in
    if Interp.eval lifted f then
      Alcotest.failf "%s: lifted countermodel does not falsify %s"
        (method_name m) (Ast.to_string f);
    false
  | Verdict.Unknown why ->
    Alcotest.failf "%s: unknown (%s) on %s" (method_name m) why
      (Ast.to_string f)

(* (a) application-free random formulas against the brute oracle *)
let oracle_config =
  {
    Random_formula.small with
    Random_formula.allow_apps = false;
    n_consts = 3;
    max_depth = 4;
  }

let prop_against_oracle =
  QCheck2.Test.make ~name:"six procedures vs brute-force oracle" ~count:150
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let ctx = Ast.create_ctx () in
      let f = Random_formula.generate oracle_config ctx ~seed in
      let expected = Brute.valid f in
      List.for_all (fun m -> decide_checked m ctx f = expected) all_methods)

(* (b) with uninterpreted applications: mutual agreement of the six paths *)
let prop_mutual_agreement =
  QCheck2.Test.make ~name:"six procedures agree (with applications)" ~count:120
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let ctx = Ast.create_ctx () in
      let f = Random_formula.generate Random_formula.small ctx ~seed in
      let verdicts = List.map (fun m -> decide_checked m ctx f) all_methods in
      match verdicts with
      | [] -> false
      | v :: rest -> List.for_all (( = ) v) rest)

(* (c) equality-only fragment (the EUF sublogic) *)
let prop_euf_fragment =
  QCheck2.Test.make ~name:"EUF fragment agreement" ~count:100
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let ctx = Ast.create_ctx () in
      let f =
        Random_formula.generate
          { Random_formula.equality_only with n_consts = 3; max_depth = 3 }
          ctx ~seed
      in
      let verdicts = List.map (fun m -> decide_checked m ctx f) all_methods in
      match verdicts with
      | [] -> false
      | v :: rest -> List.for_all (( = ) v) rest)

(* (d) hybrid verdicts are threshold-invariant *)
let prop_threshold_invariance =
  QCheck2.Test.make ~name:"hybrid verdict is threshold-invariant" ~count:100
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let ctx = Ast.create_ctx () in
      let f = Random_formula.generate Random_formula.small ctx ~seed in
      let verdicts =
        List.map
          (fun t -> decide_checked (Decide.Hybrid_at t) ctx f)
          [ 0; 3; 50; max_int ]
      in
      match verdicts with
      | [] -> false
      | v :: rest -> List.for_all (( = ) v) rest)

(* (e) small suite representatives: valid as generated, invalid when bugged,
   under every method *)
let suite_cases =
  [ "pipe.1"; "lsu.1"; "cache.1"; "tv.1"; "drv.2"; "ooo.0" ]

let test_suite_validity () =
  List.iter
    (fun name ->
      match Suite.find name with
      | None -> Alcotest.failf "missing benchmark %s" name
      | Some b ->
        List.iter
          (fun m ->
            (* SVC cannot finish the hardware benchmarks: skip it there *)
            let skip =
              m = Decide.Svc_baseline
              && not (String.length name >= 3 && String.sub name 0 3 = "drv")
            in
            if not skip then begin
              let ctx = Ast.create_ctx () in
              let f = b.Suite.build ctx in
              if not (decide_checked m ctx f) then
                Alcotest.failf "%s should be valid under %s" name
                  (method_name m);
              let ctx2 = Ast.create_ctx () in
              let fb = b.Suite.build ~bug:true ctx2 in
              if decide_checked m ctx2 fb then
                Alcotest.failf "%s bug variant should be invalid under %s" name
                  (method_name m)
            end)
          [ Decide.Hybrid_default; Decide.Sd; Decide.Eij; Decide.Lazy_baseline;
            Decide.Svc_baseline ])
    suite_cases

(* certified Valid verdicts: the DRUP trace of the whole pipeline replays
   through the independent checker *)
let prop_certified_validity =
  QCheck2.Test.make ~name:"valid verdicts certify via DRUP" ~count:60
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let ctx = Ast.create_ctx () in
      let f = Random_formula.generate Random_formula.small ctx ~seed in
      let r =
        Decide.decide ~method_:Decide.Hybrid_default ~certify:true
          ~deadline:(Deadline.after 30.) ctx f
      in
      match (r.Decide.verdict, r.Decide.certified) with
      | Verdict.Valid, Some true -> true
      | Verdict.Valid, (Some false | None) -> false
      | Verdict.Invalid _, None -> true
      | Verdict.Invalid _, Some _ -> false
      | Verdict.Unknown _, _ -> false)

let test_certified_suite () =
  List.iter
    (fun name ->
      match Suite.find name with
      | None -> Alcotest.failf "missing %s" name
      | Some b ->
        let ctx = Ast.create_ctx () in
        let f = b.Suite.build ctx in
        let r =
          Decide.decide ~certify:true ~deadline:(Deadline.after 30.) ctx f
        in
        (match (r.Decide.verdict, r.Decide.certified) with
        | Verdict.Valid, Some true -> ()
        | _ -> Alcotest.failf "%s should be valid and certified" name))
    [ "pipe.1"; "lsu.1"; "cache.2"; "tv.1"; "drv.2" ]

(* (f) the textual pipeline: parse, decide, verify a known countermodel *)
let test_parse_decide () =
  let ctx = Ast.create_ctx () in
  let f =
    Parse.formula ctx
      "(=> (and (<= h t) (< (succ h) t)) (not (= (+ h 1) t)))"
  in
  let r = Decide.decide ctx f in
  (match r.Decide.verdict with
  | Verdict.Valid -> ()
  | Verdict.Invalid _ | Verdict.Unknown _ ->
    Alcotest.fail "queue-pointer fact should be valid");
  let g = Parse.formula ctx "(=> (<= h t) (not (= (+ h 1) t)))" in
  match (Decide.decide ctx g).Decide.verdict with
  | Verdict.Invalid _ -> ()
  | Verdict.Valid | Verdict.Unknown _ ->
    Alcotest.fail "weakened hypothesis should be falsifiable"

(* (g) hand-picked regressions across the full pipeline *)
let regression_cases =
  [
    (* validity, formula *)
    (true, "(= x x)");
    (false, "(= x y)");
    (true, "(=> (= a b) (= (f (g a)) (f (g b))))");
    (false, "(=> (= (f a) (f b)) (= a b))");
    (true, "(= (ite (< x y) x y) (ite (< y x) y x))");
    (true, "(=> (and (< x y) (< y z)) (< x (+ z 1)))");
    (false, "(=> (< x (+ y 5)) (< x y))");
    (true, "(=> (< (+ x 2) (+ y 2)) (< x y))");
    (true, "(iff (P x) (P x))");
    (false, "(iff (P x) (P y))");
    (true, "(=> (and (= x y) (P (f x))) (P (f y)))");
    (true, "(or (= x y) (or (< x y) (< y x)))");
    (false, "(or (= x y) (< x y))");
    (true, "(not (< x x))");
    (true, "(not (= (succ x) x))");
    (true, "(=> (= (succ x) y) (< x y))");
    (* positive-equality corner cases: p-terms under diverse interpretation *)
    (false, "(= (f a) (g a))");
    (true, "(not (= (f a) (+ (f a) 1)))");
    (false, "(< (f a) (g a))");
    (true, "(or (< (f a) (g a)) (or (= (f a) (g a)) (< (g a) (f a))))");
    (* predicate arguments normalize through succ/plus sugar *)
    (true, "(=> (P (+ x 1)) (P (succ x)))");
    (false, "(=> (P x) (P (+ x 1)))");
    (* purely propositional formulas take the degenerate path *)
    (true, "(iff (and b c) (and c b))");
    (false, "(=> (or b c) (and b c))");
  ]

let test_regressions () =
  List.iter
    (fun (expected, text) ->
      List.iter
        (fun m ->
          let ctx = Ast.create_ctx () in
          let f = Parse.formula ctx text in
          if decide_checked m ctx f <> expected then
            Alcotest.failf "%s: expected %b for %s" (method_name m) expected
              text)
        all_methods)
    regression_cases

let () =
  Alcotest.run "integration"
    [
      ( "agreement",
        [
          QCheck_alcotest.to_alcotest prop_against_oracle;
          QCheck_alcotest.to_alcotest prop_mutual_agreement;
          QCheck_alcotest.to_alcotest prop_euf_fragment;
          QCheck_alcotest.to_alcotest prop_threshold_invariance;
        ] );
      ( "suite",
        [ Alcotest.test_case "validity and bugs" `Slow test_suite_validity ] );
      ( "certification",
        [
          QCheck_alcotest.to_alcotest prop_certified_validity;
          Alcotest.test_case "suite certifies" `Quick test_certified_suite;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "parse and decide" `Quick test_parse_decide;
          Alcotest.test_case "regressions" `Quick test_regressions;
        ] );
    ]
