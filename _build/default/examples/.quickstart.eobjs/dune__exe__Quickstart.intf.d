examples/quickstart.mli:
