examples/protocol_model_checking.ml: Format Sepsat_model Sepsat_suf
