examples/certified_solving.ml: Format List Option Sepsat Sepsat_sep Sepsat_suf
