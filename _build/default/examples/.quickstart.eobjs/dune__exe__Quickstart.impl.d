examples/quickstart.ml: Format List Sepsat Sepsat_sep Sepsat_suf
