examples/certified_solving.mli:
