examples/pipeline_verification.mli:
