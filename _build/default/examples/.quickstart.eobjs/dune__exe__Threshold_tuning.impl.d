examples/threshold_tuning.ml: Format List Printf Sepsat Sepsat_harness Sepsat_sep Sepsat_suf Sepsat_workloads
