examples/pipeline_verification.ml: Format List Sepsat Sepsat_sat Sepsat_sep Sepsat_suf Sepsat_workloads
