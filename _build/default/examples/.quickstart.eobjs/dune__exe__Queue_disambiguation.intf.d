examples/queue_disambiguation.mli:
