examples/queue_disambiguation.ml: Format List Printf Sepsat Sepsat_sep Sepsat_suf Sepsat_util Sepsat_workloads
