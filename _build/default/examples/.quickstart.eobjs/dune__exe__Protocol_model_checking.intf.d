examples/protocol_model_checking.mli:
