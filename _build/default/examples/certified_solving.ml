(* Certified solving: decide an SMT-LIB script, and for the unsatisfiable
   case have the CDCL solver's DRUP trace replayed by the independent
   unit-propagation checker — trusting the verdict no longer requires
   trusting the search.

   Run with:  dune exec examples/certified_solving.exe *)

module Ast = Sepsat_suf.Ast
module Smtlib = Sepsat_suf.Smtlib
module Decide = Sepsat.Decide
module Verdict = Sepsat_sep.Verdict

let coherence_script =
  {|
  (set-logic QF_UFIDL)
  ; Three cache agents with distinct identifiers; a write request grants
  ; ownership to the requester and invalidates other owners.
  (declare-const M Int) (declare-const I Int)
  (declare-const id0 Int) (declare-const id1 Int) (declare-const req Int)
  (declare-const st0 Int) (declare-const st1 Int)
  (assert (distinct M I))
  (assert (distinct id0 id1))
  ; both caches end up Modified after the request:
  (assert (= M (ite (= id0 req) M (ite (= st0 M) I st0))))
  (assert (= M (ite (= id1 req) M (ite (= st1 M) I st1))))
  (check-sat)
  |}

let () =
  let ctx = Ast.create_ctx () in
  let script = Smtlib.script ctx coherence_script in
  Format.printf "script: %d assertions, logic %s@."
    (List.length script.Smtlib.assertions)
    (Option.value ~default:"(unset)" script.Smtlib.logic);
  let goal = Smtlib.goal ctx script in
  let r = Decide.decide ~certify:true ctx goal in
  match (r.Decide.verdict, r.Decide.certified) with
  | Verdict.Valid, Some true ->
    Format.printf
      "check-sat: unsat — two caches cannot both own the line@.";
    Format.printf
      "the DRUP trace replayed through the independent checker: certified@."
  | Verdict.Valid, (Some false | None) ->
    failwith "valid but the certificate did not replay"
  | Verdict.Invalid _, _ ->
    (* The protocol does allow both Modified when both identifiers match the
       requester; the distinctness assertion rules that out, so this must
       not happen. *)
    failwith "unexpected: assertions satisfiable"
  | Verdict.Unknown w, _ -> failwith ("inconclusive: " ^ w)
