(* SEP_THOLD tuning (paper §4.1): run EIJ over a benchmark sample, cluster
   the normalized run-times by variance minimization, and derive a domain
   threshold; then compare HYBRID at the derived threshold against the paper
   default on a formula near the knee.

   Run with:  dune exec examples/threshold_tuning.exe *)

module Ast = Sepsat_suf.Ast
module Suite = Sepsat_workloads.Suite
module Runner = Sepsat_harness.Runner
module Cluster = Sepsat_harness.Cluster
module Decide = Sepsat.Decide
module Verdict = Sepsat_sep.Verdict

let () =
  let deadline_s = 8. in
  Format.printf "running EIJ over the 16-benchmark sample...@.";
  let samples =
    List.map
      (fun b ->
        let row = Runner.run ~deadline_s Decide.Eij b in
        (row.Runner.sep_cnt, Runner.normalized_time ~deadline_s row))
      Suite.sample16
  in
  let threshold = Cluster.select_threshold samples in
  Format.printf "derived SEP_THOLD = %d (paper default: 700)@.@." threshold;
  (* A formula near the knee: under the derived threshold its class flips
     from EIJ to SD. *)
  match Suite.find "tv.2" with
  | None -> assert false
  | Some bench ->
    List.iter
      (fun (label, m) ->
        let row = Runner.run ~deadline_s:20. m bench in
        Format.printf "tv.2 with %-28s %.3fs (%s)@." label
          row.Runner.total_time
          (match row.Runner.verdict with
          | Verdict.Valid -> "valid"
          | Verdict.Invalid _ -> "invalid"
          | Verdict.Unknown w -> w))
      [
        ("HYBRID at paper default (700):", Decide.Hybrid_default);
        ( Printf.sprintf "HYBRID at derived (%d):" threshold,
          Decide.Hybrid_at threshold );
      ]
