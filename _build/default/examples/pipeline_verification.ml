(* Processor verification: prove that committing an instruction bundle
   through a reordering write buffer preserves the architectural state, then
   plant an operand-swap bug and extract a first-order countermodel.

   Run with:  dune exec examples/pipeline_verification.exe *)

module Ast = Sepsat_suf.Ast
module Interp = Sepsat_suf.Interp
module Pipeline = Sepsat_workloads.Pipeline
module Decide = Sepsat.Decide
module Countermodel = Sepsat.Countermodel
module Verdict = Sepsat_sep.Verdict

let () =
  (* The correct design. *)
  let ctx = Ast.create_ctx () in
  let correct = Pipeline.formula ctx ~n_instructions:6 ~seed:42 in
  Format.printf "verifying a 6-instruction bundle (%d DAG nodes)...@."
    (Ast.size correct);
  let r = Decide.decide ctx correct in
  Format.printf "  %s in %.3fs (%d conflict clauses)@.@."
    (match r.Decide.verdict with
    | Verdict.Valid -> "correct"
    | Verdict.Invalid _ -> "BUGGY"
    | Verdict.Unknown w -> w)
    r.Decide.total_time
    (match r.Decide.sat_stats with
    | Some st -> st.Sepsat_sat.Solver.conflicts
    | None -> 0);

  (* The buggy design: last instruction's ALU operands swapped. *)
  let ctx = Ast.create_ctx () in
  let buggy = Pipeline.formula ~bug:true ctx ~n_instructions:6 ~seed:42 in
  Format.printf "verifying the operand-swap mutation...@.";
  let r = Decide.decide ctx buggy in
  match r.Decide.verdict with
  | Verdict.Invalid assignment ->
    Format.printf "  bug found; lifting the countermodel to first order:@.";
    let interp = Countermodel.lift r.Decide.elim assignment in
    (* Replay: the interpretation must falsify the original formula. *)
    let value = Interp.eval interp buggy in
    Format.printf "  formula value under the countermodel: %b (expected \
                   false)@."
      value;
    assert (not value);
    (* Peek at the distinguishing register values. *)
    List.iter
      (fun name ->
        Format.printf "    %s = %d@." name (interp.Interp.func name []))
      [ "d5"; "s1_5"; "s2_5"; "probe0" ]
  | Verdict.Valid -> failwith "the planted bug went undetected!"
  | Verdict.Unknown w -> failwith ("inconclusive: " ^ w)
