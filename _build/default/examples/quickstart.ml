(* Quickstart: build SUF formulas through the API and decide their validity.

   Run with:  dune exec examples/quickstart.exe *)

module Ast = Sepsat_suf.Ast
module Parse = Sepsat_suf.Parse
module Decide = Sepsat.Decide
module Verdict = Sepsat_sep.Verdict

let () =
  let ctx = Ast.create_ctx () in

  (* Functional consistency: a = b implies f(a) = f(b). *)
  let a = Ast.const ctx "a" and b = Ast.const ctx "b" in
  let f t = Ast.app ctx "f" [ t ] in
  let congruence =
    Ast.implies ctx (Ast.eq ctx a b) (Ast.eq ctx (f a) (f b))
  in
  Format.printf "formula 1: %a@." Ast.pp congruence;
  Format.printf "  valid? %b@.@." (Decide.valid ctx congruence);

  (* The converse is not valid: f may collapse distinct arguments. *)
  let converse =
    Ast.implies ctx (Ast.eq ctx (f a) (f b)) (Ast.eq ctx a b)
  in
  Format.printf "formula 2: %a@." Ast.pp converse;
  let r = Decide.decide ctx converse in
  (match r.Decide.verdict with
  | Verdict.Invalid assignment ->
    Format.printf "  invalid; falsifying constants:@.";
    List.iter
      (fun (n, v) -> Format.printf "    %s = %d@." n v)
      assignment.Sepsat_sep.Brute.ints
  | Verdict.Valid | Verdict.Unknown _ -> assert false);
  Format.printf "@.";

  (* Separation predicates: the paper's own example x>=y ∧ y>=z ∧ z>=x+1 is
     unsatisfiable, i.e. its negation is valid. Formulas can also be read
     from the concrete syntax. *)
  let negated =
    Parse.formula ctx
      "(not (and (>= x y) (and (>= y z) (>= z (succ x)))))"
  in
  Format.printf "formula 3: %a@." Ast.pp negated;
  Format.printf "  valid? %b@." (Decide.valid ctx negated);

  (* Every method agrees, from eager bit-vector to lazy refinement. *)
  List.iter
    (fun m ->
      Format.printf "  %a says: %b@." Decide.pp_method m
        (Decide.valid ~method_:m ctx negated))
    [
      Decide.Sd; Decide.Eij; Decide.Hybrid_default; Decide.Svc_baseline;
      Decide.Lazy_baseline;
    ]
