(* Model checking a write-invalidate coherence protocol with the term-level
   transition-system layer: k-induction proves the single-owner invariant of
   the correct design, and BMC digs a concrete multi-step trace out of a
   design that forgets to downgrade the previous owner.

   Run with:  dune exec examples/protocol_model_checking.exe *)

module Ast = Sepsat_suf.Ast
module Ts = Sepsat_model.Transition_system

let build ctx ~downgrade =
  (* Protocol states are compared against rigid symbolic constants. *)
  let modified = Ast.const ctx "M"
  and shared = Ast.const ctx "S"
  and invalid = Ast.const ctx "I" in
  let id0 = Ast.const ctx "id0" and id1 = Ast.const ctx "id1" in
  let sys =
    Ts.define ~ctx ~name:"msi" ~int_vars:[ "st0"; "st1" ] ~bool_vars:[]
      ~init:(fun s ->
        Ast.and_ ctx
          (Ast.eq ctx (Ts.int_var s "st0") invalid)
          (Ast.eq ctx (Ts.int_var s "st1") invalid))
      ~next:(fun s ->
        (* some cache issues a write request for the line *)
        let requester = Ts.int_input s "req" in
        let grant id st =
          let downgraded =
            if downgrade then Ast.tite ctx (Ast.eq ctx st modified) shared st
            else st
          in
          Ast.tite ctx (Ast.eq ctx id requester) modified downgraded
        in
        [
          ("st0", `I (grant id0 (Ts.int_var s "st0")));
          ("st1", `I (grant id1 (Ts.int_var s "st1")));
        ])
      ()
  in
  (* The rigid-constant assumptions travel inside the property, so they are
     available to the induction's arbitrary start state too. *)
  let assumptions =
    Ast.and_list ctx
      [
        Ast.not_ ctx (Ast.eq ctx modified shared);
        Ast.not_ ctx (Ast.eq ctx modified invalid);
        Ast.not_ ctx (Ast.eq ctx id0 id1);
      ]
  in
  let single_owner s =
    Ast.implies ctx assumptions
      (Ast.not_ ctx
         (Ast.and_ ctx
            (Ast.eq ctx (Ts.int_var s "st0") modified)
            (Ast.eq ctx (Ts.int_var s "st1") modified)))
  in
  (sys, single_owner)

let () =
  let ctx = Ast.create_ctx () in
  let sys, single_owner = build ctx ~downgrade:true in
  Format.printf "correct protocol, k-induction: %a@." Ts.pp_result
    (Ts.induction sys ~property:single_owner);

  let ctx = Ast.create_ctx () in
  let buggy, single_owner = build ctx ~downgrade:false in
  Format.printf "no-downgrade mutation, BMC to depth 4:@.%a" Ts.pp_result
    (Ts.bmc buggy ~property:single_owner ~depth:4)
