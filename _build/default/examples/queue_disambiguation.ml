(* Load-store queue address disambiguation, decided by every method — the
   separation-predicate-heavy workload where the per-constraint (EIJ)
   encoding shines and the small-domain (SD) encoding pays bit-level costs.

   Run with:  dune exec examples/queue_disambiguation.exe *)

module Ast = Sepsat_suf.Ast
module Load_store = Sepsat_workloads.Load_store
module Decide = Sepsat.Decide
module Verdict = Sepsat_sep.Verdict
module Deadline = Sepsat_util.Deadline

let () =
  let methods =
    [
      Decide.Sd; Decide.Eij; Decide.Hybrid_default; Decide.Svc_baseline;
      Decide.Lazy_baseline;
    ]
  in
  Format.printf "%-8s" "n_ops";
  List.iter (fun m -> Format.printf " %14s" (Format.asprintf "%a" Decide.pp_method m)) methods;
  Format.printf "@.";
  List.iter
    (fun n ->
      Format.printf "%-8d" n;
      List.iter
        (fun m ->
          let ctx = Ast.create_ctx () in
          let f = Load_store.formula ctx ~n_ops:n in
          let deadline = Deadline.after 10. in
          let r = Decide.decide ~method_:m ~deadline ctx f in
          let cell =
            match r.Decide.verdict with
            | Verdict.Valid -> Printf.sprintf "%.3fs" r.Decide.total_time
            | Verdict.Invalid _ -> "UNSOUND"
            | Verdict.Unknown w -> w
          in
          Format.printf " %14s" cell)
        methods;
      Format.printf "@.")
    [ 4; 8; 12; 16 ]
